#![warn(missing_docs)]
//! The `instrep-serve` daemon: instruction-repetition analysis as a
//! long-running service.
//!
//! Clients connect to a Unix domain socket and speak the
//! newline-delimited JSON contract of [`instrep_core::service`]: one
//! request line in, one response line out, in order, per connection.
//! Each request names an in-tree workload (workload/scale/seed) or
//! carries raw MiniC source; the daemon compiles what it must, runs the
//! analysis on a fixed pool of worker threads — each driving a
//! [`Session`] against one shared [`AnalysisCache`] — and streams the
//! canonical report JSON back, plus optional metrics/profile/loops
//! payloads.
//!
//! Production concerns are the feature, not an afterthought:
//!
//! * **Bounded queue with explicit backpressure.** At most
//!   [`ServeConfig::queue`] requests wait for a worker; when the queue
//!   is full the daemon answers `overloaded` with a `retry_after_ms`
//!   hint instead of buffering without bound.
//! * **Per-request wall-clock timeouts.** Every request gets
//!   [`ServeConfig::timeout`] from the moment it is accepted onto the
//!   queue. A request still queued at its deadline is abandoned without
//!   running; one that finishes after its client gave up has its result
//!   dropped (the simulation itself is never killed mid-flight — see
//!   `DESIGN.md` §17.3). Either way the lane comes back clean.
//! * **One shared cache, many clients.** Workers derive the same
//!   content-addressed keys as the CLI; the cache's temp+rename write
//!   discipline makes concurrent stores safe, proven by the
//!   many-client stress test in `tests/stress.rs`.
//! * **Telemetry.** Request/queue/outcome counters, a queue-depth
//!   gauge, and a request-latency histogram join the existing cache
//!   hit/miss instruments in the shared
//!   [`TelemetryRegistry`](instrep_core::TelemetryRegistry), so
//!   `--telemetry-out` and `--heartbeat-out` work exactly as they do in
//!   `instrep-repro`.
//! * **Graceful shutdown.** [`Server::shutdown`] (the binary wires
//!   SIGTERM/ctrl-C to it) stops accepting work, answers late arrivals
//!   with `shutting_down`, drains everything already queued or running,
//!   and then exits.
//!
//! The crate is a library so tests (and embedders) can run the server
//! in-process; `src/main.rs` is a thin CLI over [`Server::start`].

use std::collections::HashMap;
use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use instrep_asm::Image;
use instrep_core::service::{
    loops_json, metrics_json, profile_json, report_json, scale_windows, ErrorKind, Json,
    ReportPayload, Request, RequestError, RequestSource, Response, ServiceError,
};
use instrep_core::telemetry::{Counter, Gauge, Histogram};
use instrep_core::{AnalysisCache, AnalysisConfig, Session, TelemetryRegistry};
use instrep_workloads::Scale;

/// How long an `overloaded` response tells the client to back off. One
/// queue slot drains in at most one request's wall time, so a small
/// constant beats anything derived from the (much larger) timeout.
pub const RETRY_AFTER_MS: u64 = 50;

/// Everything [`Server::start`] needs to know.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Path of the Unix domain socket to listen on. An existing socket
    /// file at this path is removed first (stale from a crash); the
    /// file is removed again on [`Server::join`].
    pub socket: PathBuf,
    /// Worker threads running analyses (minimum 1).
    pub workers: usize,
    /// Bounded request-queue depth; a full queue answers `overloaded`.
    pub queue: usize,
    /// Per-request wall-clock budget, measured from the moment the
    /// request is accepted onto the queue.
    pub timeout: Duration,
    /// Maximum accepted request-line length in bytes; longer lines are
    /// answered with `oversized` and discarded.
    pub max_request_bytes: usize,
    /// Directory for the shared [`AnalysisCache`]; `None` serves every
    /// request uncached.
    pub cache_dir: Option<PathBuf>,
}

impl ServeConfig {
    /// A config with production-shaped defaults: 2 workers, a queue of
    /// 16, a 30 s timeout, and a 256 KiB request cap.
    pub fn new(socket: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            socket: socket.into(),
            workers: 2,
            queue: 16,
            timeout: Duration::from_secs(30),
            max_request_bytes: 256 * 1024,
            cache_dir: None,
        }
    }
}

/// Serve-layer instruments, all registered in the shared
/// [`TelemetryRegistry`] (`serve_*` names in the exposition).
struct ServeTelemetry {
    requests: Counter,
    responses_ok: Counter,
    bad_requests: Counter,
    overloaded: Counter,
    timeouts: Counter,
    abandoned: Counter,
    shutdown_rejected: Counter,
    connections: Counter,
    queue_depth: Gauge,
    queue_len: AtomicU64,
    request_ns: Histogram,
}

impl ServeTelemetry {
    fn new(registry: &TelemetryRegistry) -> ServeTelemetry {
        ServeTelemetry {
            requests: registry.counter("serve_requests"),
            responses_ok: registry.counter("serve_responses_ok"),
            bad_requests: registry.counter("serve_bad_requests"),
            overloaded: registry.counter("serve_rejected_overload"),
            timeouts: registry.counter("serve_timeouts"),
            abandoned: registry.counter("serve_abandoned_results"),
            shutdown_rejected: registry.counter("serve_rejected_shutdown"),
            connections: registry.counter("serve_connections"),
            queue_depth: registry.gauge("serve_queue_depth"),
            queue_len: AtomicU64::new(0),
            request_ns: registry.histogram("serve_request_ns"),
        }
    }

    fn queue_push(&self) {
        let v = self.queue_len.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth.set(v);
    }

    fn queue_pop(&self) {
        let v = self.queue_len.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
        self.queue_depth.set(v);
    }
}

/// State shared by the accept loop, connection threads, and workers.
struct Ctx {
    timeout: Duration,
    max_request_bytes: usize,
    shutdown: Arc<AtomicBool>,
    cache: Option<AnalysisCache>,
    /// Compiled in-tree workload images, memoized by name: the sources
    /// are static, so every request for `"compress"` shares one build.
    images: Mutex<HashMap<String, Arc<Image>>>,
    registry: Arc<TelemetryRegistry>,
    tel: ServeTelemetry,
}

/// One queued request: the work, its wall-clock deadline, and the
/// channel its connection thread is waiting on. Dropping the item
/// (queue torn down at shutdown) makes the connection's receiver
/// disconnect, which it answers as `shutting_down`.
struct WorkItem {
    req: Request,
    deadline: Instant,
    reply: Sender<Response>,
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`Server::shutdown`] then [`Server::join`].
pub struct Server {
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    socket: PathBuf,
}

impl Server {
    /// Binds the socket, spawns the worker pool and the accept loop,
    /// and returns. `registry` receives the serve and cache
    /// instruments; pass the same registry to a heartbeat sampler or
    /// exposition writer to observe the daemon live.
    ///
    /// # Errors
    ///
    /// Propagates socket-bind and cache-open failures.
    pub fn start(cfg: ServeConfig, registry: Arc<TelemetryRegistry>) -> std::io::Result<Server> {
        let cache = match &cfg.cache_dir {
            Some(dir) => {
                let mut cache = AnalysisCache::open(dir)?;
                cache.attach_telemetry(&registry);
                Some(cache)
            }
            None => None,
        };
        // A stale socket file from a crashed run would fail the bind.
        if cfg.socket.exists() {
            std::fs::remove_file(&cfg.socket)?;
        }
        let listener = UnixListener::bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let tel = ServeTelemetry::new(&registry);
        let ctx = Arc::new(Ctx {
            timeout: cfg.timeout,
            max_request_bytes: cfg.max_request_bytes,
            shutdown: Arc::clone(&shutdown),
            cache,
            images: Mutex::new(HashMap::new()),
            registry,
            tel,
        });

        let (tx, rx) = mpsc::sync_channel::<WorkItem>(cfg.queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..cfg.workers.max(1))
            .map(|w| {
                let rx = Arc::clone(&rx);
                let ctx = Arc::clone(&ctx);
                std::thread::spawn(move || worker_loop(w, &rx, &ctx))
            })
            .collect();

        let accept = {
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || accept_loop(&listener, tx, &ctx))
        };

        Ok(Server { shutdown, accept: Some(accept), workers, socket: cfg.socket })
    }

    /// The socket path the daemon is listening on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Begins a graceful shutdown: stop accepting connections, answer
    /// new requests with `shutting_down`, drain everything already
    /// queued or running. Returns immediately; [`Server::join`] waits.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the accept loop, every connection, and every worker to
    /// finish, then removes the socket file. Without a prior
    /// [`Server::shutdown`] this blocks until one happens.
    ///
    /// # Errors
    ///
    /// Reports a panicked server thread (a bug, not an I/O condition).
    pub fn join(mut self) -> std::io::Result<()> {
        let mut panicked = false;
        if let Some(accept) = self.accept.take() {
            panicked |= accept.join().is_err();
        }
        for w in self.workers.drain(..) {
            panicked |= w.join().is_err();
        }
        std::fs::remove_file(&self.socket).ok();
        if panicked {
            return Err(std::io::Error::other("a server thread panicked"));
        }
        Ok(())
    }
}

/// Accepts connections until shutdown, then joins the connection
/// threads it spawned. Holds the queue's only original sender, so once
/// this returns (and every connection thread with a clone has exited)
/// the workers see a disconnected queue and drain out.
fn accept_loop(listener: &UnixListener, tx: SyncSender<WorkItem>, ctx: &Arc<Ctx>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !ctx.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                ctx.tel.connections.inc();
                let tx = tx.clone();
                let ctx = Arc::clone(ctx);
                conns.push(std::thread::spawn(move || handle_connection(stream, &tx, &ctx)));
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            // Accept errors are transient (EMFILE, aborted handshake):
            // back off and keep serving rather than killing the daemon.
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
        // Reap finished connection threads so a long-lived daemon does
        // not accumulate handles.
        conns.retain(|h| !h.is_finished());
    }
    drop(tx);
    for h in conns {
        let _ = h.join();
    }
}

/// What one attempt to read a request line produced.
enum LineOutcome {
    /// A complete line (newline stripped).
    Line(Vec<u8>),
    /// The line exceeded the size cap; its bytes through the newline
    /// were discarded and the connection can continue.
    Oversized,
    /// Peer closed the connection.
    Closed,
    /// The daemon is shutting down.
    Shutdown,
}

/// Reads one newline-terminated line into `buf`-carried state, honoring
/// the size cap and polling the shutdown flag between read timeouts.
fn read_line(stream: &mut UnixStream, carry: &mut Vec<u8>, ctx: &Ctx) -> LineOutcome {
    let mut discarding = false;
    let mut chunk = [0u8; 4096];
    loop {
        // Serve a complete line (or finish a discard) from the carry
        // buffer before touching the socket again.
        if let Some(pos) = carry.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = carry.drain(..=pos).collect();
            line.pop();
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if discarding {
                return LineOutcome::Oversized;
            }
            return LineOutcome::Line(line);
        }
        if !discarding && carry.len() > ctx.max_request_bytes {
            // Too long without a newline: switch to discard mode and
            // keep consuming until the line ends.
            discarding = true;
        }
        if discarding {
            carry.clear();
        }
        match stream.read(&mut chunk) {
            Ok(0) => return LineOutcome::Closed,
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut => {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    return LineOutcome::Shutdown;
                }
            }
            Err(e) if e.kind() == IoErrorKind::Interrupted => {}
            Err(_) => return LineOutcome::Closed,
        }
    }
}

/// One connection: request lines in, response lines out, in order.
fn handle_connection(mut stream: UnixStream, tx: &SyncSender<WorkItem>, ctx: &Arc<Ctx>) {
    // Short read timeouts keep the thread responsive to shutdown; a
    // write timeout keeps a dead client from wedging the thread.
    stream.set_nonblocking(false).ok();
    stream.set_read_timeout(Some(Duration::from_millis(100))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(10))).ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut carry = Vec::new();
    loop {
        let response = match read_line(&mut stream, &mut carry, ctx) {
            LineOutcome::Line(line) => handle_request_line(&line, tx, ctx),
            LineOutcome::Oversized => {
                ctx.tel.bad_requests.inc();
                Response::Error(ServiceError {
                    id: 0,
                    kind: ErrorKind::Oversized,
                    message: format!(
                        "request line exceeds {} bytes and was discarded",
                        ctx.max_request_bytes
                    ),
                    retry_after_ms: None,
                })
            }
            LineOutcome::Closed | LineOutcome::Shutdown => return,
        };
        let mut line = response.encode();
        line.push('\n');
        if writer.write_all(line.as_bytes()).is_err() {
            return;
        }
    }
}

/// Best-effort id extraction from a line that failed full decoding, so
/// even error responses correlate when the client sent a sane `id`.
fn peek_id(line: &str) -> u64 {
    Json::parse(line)
        .ok()
        .and_then(|doc| doc.get("id").and_then(Json::num))
        .filter(|n| *n >= 0.0 && n.fract() == 0.0)
        .map_or(0, |n| n as u64)
}

/// Decodes, admission-controls, queues, and awaits one request.
fn handle_request_line(raw: &[u8], tx: &SyncSender<WorkItem>, ctx: &Ctx) -> Response {
    ctx.tel.requests.inc();
    let Ok(line) = std::str::from_utf8(raw) else {
        ctx.tel.bad_requests.inc();
        return Response::Error(ServiceError {
            id: 0,
            kind: ErrorKind::BadRequest,
            message: "request line is not valid UTF-8".to_string(),
            retry_after_ms: None,
        });
    };
    let req = match Request::decode(line) {
        Ok(req) => req,
        Err(e) => {
            ctx.tel.bad_requests.inc();
            let kind = match e {
                RequestError::UnsupportedVersion { .. } => ErrorKind::UnsupportedVersion,
                RequestError::Malformed(_) => ErrorKind::BadRequest,
            };
            return Response::Error(ServiceError {
                id: peek_id(line),
                kind,
                message: e.message(),
                retry_after_ms: None,
            });
        }
    };
    let id = req.id;
    if ctx.shutdown.load(Ordering::SeqCst) {
        ctx.tel.shutdown_rejected.inc();
        return Response::Error(ServiceError {
            id,
            kind: ErrorKind::ShuttingDown,
            message: "daemon is draining for shutdown".to_string(),
            retry_after_ms: None,
        });
    }

    let (reply_tx, reply_rx) = mpsc::channel();
    let deadline = Instant::now() + ctx.timeout;
    // Count the slot before the send: a worker can dequeue (and
    // decrement) the instant the item lands, so incrementing after the
    // send could underflow the depth gauge.
    ctx.tel.queue_push();
    match tx.try_send(WorkItem { req, deadline, reply: reply_tx }) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            ctx.tel.queue_pop();
            ctx.tel.overloaded.inc();
            return Response::Error(ServiceError {
                id,
                kind: ErrorKind::Overloaded,
                message: format!("request queue is full; retry in {RETRY_AFTER_MS}ms"),
                retry_after_ms: Some(RETRY_AFTER_MS),
            });
        }
        Err(TrySendError::Disconnected(_)) => {
            ctx.tel.queue_pop();
            ctx.tel.shutdown_rejected.inc();
            return Response::Error(ServiceError {
                id,
                kind: ErrorKind::ShuttingDown,
                message: "daemon is draining for shutdown".to_string(),
                retry_after_ms: None,
            });
        }
    }
    match reply_rx.recv_timeout(ctx.timeout) {
        Ok(response) => {
            if matches!(response, Response::Report(_)) {
                ctx.tel.responses_ok.inc();
            }
            response
        }
        Err(RecvTimeoutError::Timeout) => {
            ctx.tel.timeouts.inc();
            Response::Error(ServiceError {
                id,
                kind: ErrorKind::Timeout,
                message: format!(
                    "no result within {}ms; the request was abandoned",
                    ctx.timeout.as_millis()
                ),
                retry_after_ms: None,
            })
        }
        Err(RecvTimeoutError::Disconnected) => Response::Error(ServiceError {
            id,
            kind: ErrorKind::ShuttingDown,
            message: "daemon shut down before the request completed".to_string(),
            retry_after_ms: None,
        }),
    }
}

/// Worker: pull, deadline-check, analyze, reply — until the queue
/// disconnects (every sender gone, which only happens at shutdown).
fn worker_loop(worker: usize, rx: &Mutex<Receiver<WorkItem>>, ctx: &Ctx) {
    let lane = ctx.registry.lane(worker);
    loop {
        // Holding the lock across the blocking recv is deliberate: only
        // one idle worker waits at a time, and it releases the lock the
        // moment it has an item, so dispatch serializes but the
        // analyses themselves run in parallel.
        let item = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(item) = item else { return };
        ctx.tel.queue_pop();
        if Instant::now() >= item.deadline {
            // Expired while queued: abandon without running so a burst
            // of doomed work cannot wedge the pool.
            ctx.tel.abandoned.inc();
            let _ = item.reply.send(Response::Error(ServiceError {
                id: item.req.id,
                kind: ErrorKind::Timeout,
                message: "request expired while queued".to_string(),
                retry_after_ms: None,
            }));
            continue;
        }
        let label = match &item.req.source {
            RequestSource::Workload(name) => name.clone(),
            RequestSource::Source(_) => "<raw source>".to_string(),
        };
        lane.set_label(&label);
        let started = Instant::now();
        let response = process(&item.req, ctx);
        ctx.tel.request_ns.record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        lane.job_done();
        lane.set_label("");
        if item.reply.send(response).is_err() {
            // The connection gave up (timeout) or went away; the result
            // is dropped, never served stale.
            ctx.tel.abandoned.inc();
        }
    }
}

fn error(id: u64, kind: ErrorKind, message: String) -> Response {
    Response::Error(ServiceError { id, kind, message, retry_after_ms: None })
}

/// Runs one request through a fresh [`Session`] against the shared
/// cache and encodes the response payloads.
fn process(req: &Request, ctx: &Ctx) -> Response {
    let (image, input) = match &req.source {
        RequestSource::Workload(name) => {
            let Some(wl) = instrep_workloads::by_name(name) else {
                return error(req.id, ErrorKind::BadRequest, format!("unknown workload `{name}`"));
            };
            let scale = match req.scale.as_str() {
                "tiny" => Scale::Tiny,
                "small" => Scale::Small,
                "full" => Scale::Full,
                other => {
                    return error(req.id, ErrorKind::BadRequest, format!("unknown scale `{other}`"))
                }
            };
            let image = {
                let mut images = match ctx.images.lock() {
                    Ok(g) => g,
                    Err(_) => {
                        return error(
                            req.id,
                            ErrorKind::AnalysisFailed,
                            "image cache poisoned".to_string(),
                        )
                    }
                };
                match images.get(name) {
                    Some(image) => Arc::clone(image),
                    None => match wl.build() {
                        Ok(image) => {
                            let image = Arc::new(image);
                            images.insert(name.clone(), Arc::clone(&image));
                            image
                        }
                        Err(e) => {
                            return error(
                                req.id,
                                ErrorKind::AnalysisFailed,
                                format!("workload `{name}` failed to build: {e}"),
                            )
                        }
                    },
                }
            };
            (image, wl.input(scale, req.seed))
        }
        RequestSource::Source(minic) => match instrep_minicc::build(minic) {
            Ok(image) => (Arc::new(image), Vec::new()),
            Err(e) => {
                return error(req.id, ErrorKind::BadRequest, format!("source failed to build: {e}"))
            }
        },
    };

    let Some((skip, window)) = scale_windows(&req.scale) else {
        return error(req.id, ErrorKind::BadRequest, format!("unknown scale `{}`", req.scale));
    };
    let defaults = AnalysisConfig::default();
    let cfg = AnalysisConfig {
        skip: req.skip.unwrap_or(skip),
        window: req.window.unwrap_or(window),
        top_k: req.top_k.unwrap_or(defaults.top_k),
        ..defaults
    };

    let mut session =
        Session::new(cfg).metrics(req.want_metrics).profile(req.want_profile).loops(req.want_loops);
    if let Some(cache) = &ctx.cache {
        session = session.cache(cache);
    }
    match session.run_one(&image, input) {
        Ok(ir) => Response::Report(ReportPayload {
            id: req.id,
            cache: ir.cache,
            report: report_json(&ir.report),
            metrics: ir.metrics.map(|m| metrics_json(&m)),
            profile: ir.profile.map(|p| profile_json(&p, cfg.top_k)),
            loops: ir.loops.map(|l| loops_json(&l, cfg.top_k)),
        }),
        Err(e) => error(req.id, ErrorKind::AnalysisFailed, format!("simulation trapped: {e}")),
    }
}
