//! `instrep-serve` — the analysis daemon CLI.
//!
//! Thin shell over [`instrep_serve::Server`]: parse flags, install
//! SIGINT/SIGTERM handlers, start the server, then sleep until a signal
//! flips the shutdown flag and drain. Exit code 0 means every in-flight
//! request was drained before the process left.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use instrep_core::telemetry::{render_prometheus, HeartbeatConfig, HeartbeatSampler};
use instrep_core::TelemetryRegistry;
use instrep_serve::{ServeConfig, Server};

/// Flipped by the signal handler; the main loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

// `std::process` offers no signal hooks and the workspace is hermetic
// (no libc crate), so bind the two calls we need directly. `signal(2)`
// with a plain flag-setting handler is exactly the portable subset.
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

const USAGE: &str = "\
instrep-serve: instruction-repetition analysis as a service

USAGE:
    instrep-serve --socket PATH [OPTIONS]

OPTIONS:
    --socket PATH             Unix domain socket to listen on (required)
    --workers N               analysis worker threads (default 2)
    --queue N                 bounded request-queue depth (default 16)
    --timeout-ms N            per-request wall-clock budget (default 30000)
    --max-request-bytes N     request-line size cap (default 262144)
    --cache-dir DIR           shared analysis cache directory (default: uncached)
    --telemetry-out FILE      write Prometheus exposition here on shutdown
    --heartbeat-out FILE      stream heartbeat snapshots here while serving
    --heartbeat-ms N          heartbeat period (default 200)
    --help                    print this help

The daemon answers newline-delimited JSON requests (schema version 1;
see DESIGN.md §17) and exits 0 after a graceful SIGINT/SIGTERM drain.
";

struct Args {
    cfg: ServeConfig,
    telemetry_out: Option<PathBuf>,
    heartbeat_out: Option<PathBuf>,
    heartbeat_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut socket: Option<PathBuf> = None;
    let mut cfg = ServeConfig::new("");
    let mut telemetry_out = None;
    let mut heartbeat_out = None;
    let mut heartbeat_ms = 200u64;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects a positive integer".to_string())?;
            }
            "--queue" => {
                cfg.queue = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue expects a positive integer".to_string())?;
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms")?
                    .parse()
                    .map_err(|_| "--timeout-ms expects milliseconds".to_string())?;
                cfg.timeout = Duration::from_millis(ms);
            }
            "--max-request-bytes" => {
                cfg.max_request_bytes = value("--max-request-bytes")?
                    .parse()
                    .map_err(|_| "--max-request-bytes expects a byte count".to_string())?;
            }
            "--cache-dir" => cfg.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--telemetry-out" => telemetry_out = Some(PathBuf::from(value("--telemetry-out")?)),
            "--heartbeat-out" => heartbeat_out = Some(PathBuf::from(value("--heartbeat-out")?)),
            "--heartbeat-ms" => {
                heartbeat_ms = value("--heartbeat-ms")?
                    .parse()
                    .map_err(|_| "--heartbeat-ms expects milliseconds".to_string())?;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    let Some(socket) = socket else {
        return Err("--socket is required (try --help)".to_string());
    };
    cfg.socket = socket;
    Ok(Args { cfg, telemetry_out, heartbeat_out, heartbeat_ms })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("instrep-serve: {msg}");
            return ExitCode::from(2);
        }
    };

    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }

    let registry = Arc::new(TelemetryRegistry::new());
    let heartbeat = match args.heartbeat_out {
        Some(out) => match HeartbeatSampler::start(
            Arc::clone(&registry),
            HeartbeatConfig {
                out: Some(out),
                period: Duration::from_millis(args.heartbeat_ms),
                progress: false,
            },
        ) {
            Ok(h) => Some(h),
            Err(e) => {
                eprintln!("instrep-serve: heartbeat: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let server = match Server::start(args.cfg, Arc::clone(&registry)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("instrep-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("instrep-serve: listening on {}", server.socket().display());

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("instrep-serve: draining for shutdown");
    server.shutdown();
    if let Err(e) = server.join() {
        eprintln!("instrep-serve: {e}");
        return ExitCode::FAILURE;
    }

    if let Some(h) = heartbeat {
        if let Err(e) = h.stop() {
            eprintln!("instrep-serve: heartbeat: {e}");
        }
    }
    if let Some(out) = args.telemetry_out {
        let text = render_prometheus(&registry.snapshot());
        if let Err(e) = std::fs::write(&out, text) {
            eprintln!("instrep-serve: telemetry: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("instrep-serve: drained; bye");
    ExitCode::SUCCESS
}
