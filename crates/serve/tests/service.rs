//! Behavioral tests for the daemon: protocol errors, backpressure,
//! timeouts, cache sharing, and graceful shutdown — everything the wire
//! contract promises beyond the happy path.
//!
//! Timing constants assume the interpreter manages at least ~2 M
//! instructions per second (debug profile on one core); the slow
//! requests use `window` overrides so their runtimes are bounded and
//! proportional, not open-ended.

mod util;

use std::sync::Arc;
use std::time::{Duration, Instant};

use instrep_core::service::{ErrorKind, Request, Response};
use instrep_core::telemetry::render_prometheus;
use instrep_core::{CacheOutcome, TelemetryRegistry};
use instrep_serve::{ServeConfig, Server, RETRY_AFTER_MS};
use util::{scratch_dir, socket_path, Client, FAST_SOURCE, SLOW_SOURCE};

fn start(cfg: ServeConfig) -> (Server, Arc<TelemetryRegistry>) {
    let registry = Arc::new(TelemetryRegistry::new());
    let server = Server::start(cfg, Arc::clone(&registry)).unwrap();
    (server, registry)
}

fn stop(server: Server) {
    server.shutdown();
    server.join().unwrap();
}

/// A request the daemon will spend `window` instructions on, regardless
/// of profile or machine: the program never exits inside the window.
fn slow(id: u64, window: u64) -> Request {
    Request::raw_source(id, SLOW_SOURCE).skip(0).window(window)
}

#[test]
fn serves_raw_source_and_rejects_bad_requests() {
    let (server, _registry) = start(ServeConfig::new(socket_path("svc-basic")));
    let mut c = Client::connect(server.socket());

    // Raw MiniC compiles, runs, and comes back as canonical report JSON.
    match c.roundtrip(&Request::raw_source(1, FAST_SOURCE)) {
        Response::Report(p) => {
            assert_eq!(p.id, 1);
            assert_eq!(p.cache, CacheOutcome::Uncached);
            assert!(p.report.contains("\"outcome\":\"exited:7\""), "report: {}", p.report);
            assert!(p.metrics.is_none() && p.profile.is_none() && p.loops.is_none());
        }
        other => panic!("expected report, got {other:?}"),
    }

    // Unknown workload names are a client error, not a daemon fault.
    match c.roundtrip(&Request::workload(2, "nope")) {
        Response::Error(e) => {
            assert_eq!(e.id, 2);
            assert_eq!(e.kind, ErrorKind::BadRequest);
            assert!(e.message.contains("nope"), "message: {}", e.message);
        }
        other => panic!("expected bad_request, got {other:?}"),
    }

    // So is raw source that does not compile.
    match c.roundtrip(&Request::raw_source(3, "int main( {")) {
        Response::Error(e) => {
            assert_eq!(e.id, 3);
            assert_eq!(e.kind, ErrorKind::BadRequest);
        }
        other => panic!("expected bad_request, got {other:?}"),
    }

    // The optional payloads ride along when asked for.
    match c.roundtrip(&Request::workload(4, "compress").with_profile().with_loops()) {
        Response::Report(p) => {
            assert!(p.profile.is_some() && p.loops.is_some());
            assert!(p.metrics.is_none());
        }
        other => panic!("expected report, got {other:?}"),
    }
    stop(server);
}

#[test]
fn protocol_errors_leave_the_connection_usable() {
    let mut cfg = ServeConfig::new(socket_path("svc-proto"));
    cfg.max_request_bytes = 4096;
    let (server, _registry) = start(cfg);
    let mut c = Client::connect(server.socket());

    // Malformed JSON.
    c.send_line("{this is not json");
    match Response::decode(&c.recv_line().unwrap()).unwrap() {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::BadRequest),
        other => panic!("expected bad_request, got {other:?}"),
    }

    // A future schema version is rejected by name, naming both sides.
    c.send_line(r#"{"schema_version":99,"id":7,"workload":"compress","scale":"tiny"}"#);
    match Response::decode(&c.recv_line().unwrap()).unwrap() {
        Response::Error(e) => {
            assert_eq!(e.id, 7, "id is still echoed when only the version is wrong");
            assert_eq!(e.kind, ErrorKind::UnsupportedVersion);
            assert!(e.message.contains("99") && e.message.contains('1'), "{}", e.message);
        }
        other => panic!("expected unsupported_version, got {other:?}"),
    }

    // An oversized line is discarded without reading it into memory...
    let huge = format!(r#"{{"schema_version":1,"id":8,"source":"{}"}}"#, "x".repeat(8192));
    c.send_line(&huge);
    match Response::decode(&c.recv_line().unwrap()).unwrap() {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::Oversized),
        other => panic!("expected oversized, got {other:?}"),
    }

    // ...and the same connection keeps working afterwards.
    match c.roundtrip(&Request::raw_source(9, FAST_SOURCE)) {
        Response::Report(p) => assert_eq!(p.id, 9),
        other => panic!("expected report, got {other:?}"),
    }
    stop(server);
}

#[test]
fn full_queue_answers_overloaded_with_retry_hint() {
    let mut cfg = ServeConfig::new(socket_path("svc-queue"));
    cfg.workers = 1;
    cfg.queue = 1;
    let (server, registry) = start(cfg);
    let socket = server.socket().to_path_buf();

    let spawn_slow = |id: u64| {
        let socket = socket.clone();
        std::thread::spawn(move || Client::connect(&socket).roundtrip(&slow(id, 5_000_000)))
    };
    // #1 occupies the only worker; #2 the only queue slot; #3 bounces.
    let a = spawn_slow(1);
    std::thread::sleep(Duration::from_millis(60));
    let b = spawn_slow(2);
    std::thread::sleep(Duration::from_millis(60));
    match Client::connect(&socket).roundtrip(&slow(3, 5_000_000)) {
        Response::Error(e) => {
            assert_eq!(e.id, 3);
            assert_eq!(e.kind, ErrorKind::Overloaded);
            assert_eq!(e.retry_after_ms, Some(RETRY_AFTER_MS));
        }
        other => panic!("expected overloaded, got {other:?}"),
    }

    // Backpressure rejected the overflow; it did not break admitted work.
    assert!(matches!(a.join().unwrap(), Response::Report(_)));
    assert!(matches!(b.join().unwrap(), Response::Report(_)));
    stop(server);
    let text = render_prometheus(&registry.snapshot());
    assert!(text.contains("instrep_serve_rejected_overload 1"), "{text}");
    assert!(text.contains("instrep_serve_responses_ok 2"), "{text}");
}

#[test]
fn deadline_expiry_times_out_and_frees_the_lane() {
    let mut cfg = ServeConfig::new(socket_path("svc-timeout"));
    cfg.workers = 2;
    cfg.timeout = Duration::from_millis(250);
    let (server, registry) = start(cfg);

    // ~10M instructions takes well over 250ms on any profile.
    let started = Instant::now();
    match Client::connect(server.socket()).roundtrip(&slow(1, 10_000_000)) {
        Response::Error(e) => {
            assert_eq!(e.id, 1);
            assert_eq!(e.kind, ErrorKind::Timeout);
        }
        other => panic!("expected timeout, got {other:?}"),
    }
    // The timeout reply comes at the deadline, not when the abandoned
    // simulation eventually finishes.
    assert!(started.elapsed() < Duration::from_secs(3), "timeout reply was not prompt");

    // The pool is not wedged: the other lane serves while the abandoned
    // run drains in the background.
    match Client::connect(server.socket()).roundtrip(&Request::raw_source(2, FAST_SOURCE)) {
        Response::Report(p) => assert_eq!(p.id, 2),
        other => panic!("expected report, got {other:?}"),
    }

    stop(server); // waits out the abandoned run, then the lane is clean
    let text = render_prometheus(&registry.snapshot());
    assert!(text.contains("instrep_serve_timeouts 1"), "{text}");
    assert!(text.contains("instrep_serve_abandoned_results 1"), "{text}");
}

#[test]
fn identical_requests_share_the_cache_across_clients() {
    let dir = scratch_dir("svc-cache");
    let mut cfg = ServeConfig::new(socket_path("svc-cache"));
    cfg.cache_dir = Some(dir.clone());
    let (server, registry) = start(cfg);

    let cold = match Client::connect(server.socket()).roundtrip(&Request::workload(1, "compress")) {
        Response::Report(p) => p,
        other => panic!("expected report, got {other:?}"),
    };
    assert_eq!(cold.cache, CacheOutcome::Miss);

    // A different client, a different request id — the same derived key.
    let warm = match Client::connect(server.socket()).roundtrip(&Request::workload(2, "compress")) {
        Response::Report(p) => p,
        other => panic!("expected report, got {other:?}"),
    };
    assert_eq!(warm.cache, CacheOutcome::Hit);
    assert_eq!(cold.report, warm.report, "cold and warm reports must be byte-identical");

    stop(server);
    let text = render_prometheus(&registry.snapshot());
    assert!(text.contains("instrep_cache_hit 1"), "{text}");
    assert!(text.contains("instrep_cache_miss 1"), "{text}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let mut cfg = ServeConfig::new(socket_path("svc-drain"));
    cfg.workers = 1;
    let (server, registry) = start(cfg);
    let socket = server.socket().to_path_buf();

    // Open the late connection before shutdown so it is already
    // accepted when the flag flips.
    let mut late = Client::connect(&socket);

    let inflight = {
        let socket = socket.clone();
        std::thread::spawn(move || Client::connect(&socket).roundtrip(&slow(1, 5_000_000)))
    };
    std::thread::sleep(Duration::from_millis(100)); // worker picked it up
    server.shutdown();

    // A request arriving during the drain is refused: answered
    // `shutting_down`, or the connection is closed if the drain poll
    // wins the race.
    late.send_line(&Request::raw_source(9, FAST_SOURCE).encode());
    if let Some(line) = late.recv_line() {
        match Response::decode(&line).unwrap() {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::ShuttingDown),
            other => panic!("expected shutting_down, got {other:?}"),
        }
    }

    // The in-flight request is drained, not dropped.
    match inflight.join().unwrap() {
        Response::Report(p) => assert_eq!(p.id, 1),
        other => panic!("expected drained report, got {other:?}"),
    }

    server.join().unwrap();
    assert!(!socket.exists(), "socket file is removed on join");
    let text = render_prometheus(&registry.snapshot());
    assert!(text.contains("instrep_serve_responses_ok 1"), "{text}");
}
