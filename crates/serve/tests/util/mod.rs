//! Shared helpers for the daemon's integration tests: unique socket
//! paths, a tiny blocking line-oriented client, and MiniC programs with
//! known runtimes (the slow one never exits on its own, so its runtime
//! is exactly the requested skip+window).

#![allow(dead_code)]

use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use instrep_core::service::{Request, Response};

/// A program that runs ~1e9 instructions if left alone; pair it with a
/// `window` override to get a request of precisely known length.
pub const SLOW_SOURCE: &str =
    "int main() { int i; int s = 0; for (i = 0; i < 100000000; i++) s = s + i; return 0; }";

/// A program that exits almost immediately, with a recognizable code.
pub const FAST_SOURCE: &str = "int main() { return 7; }";

/// A unique abstract-enough socket path per test.
pub fn socket_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("instrep-{tag}-{}-{n}.sock", std::process::id()))
}

/// A unique scratch directory per test.
pub fn scratch_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("instrep-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Minimal blocking client speaking the newline-delimited contract.
pub struct Client {
    stream: UnixStream,
    carry: Vec<u8>,
}

impl Client {
    pub fn connect(socket: &Path) -> Client {
        // The server binds before `start` returns, but give a spawned
        // thread's first connect a little slack anyway.
        for _ in 0..50 {
            match UnixStream::connect(socket) {
                Ok(stream) => return Client { stream, carry: Vec::new() },
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        panic!("could not connect to {}", socket.display());
    }

    pub fn send_line(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
    }

    /// Reads one response line; `None` means the server closed the
    /// connection.
    pub fn recv_line(&mut self) -> Option<String> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(pos) = self.carry.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.carry.drain(..=pos).collect();
                line.pop();
                return Some(String::from_utf8(line).expect("response is UTF-8"));
            }
            match self.stream.read(&mut buf) {
                Ok(0) => return None,
                Ok(n) => self.carry.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => panic!("read: {e}"),
            }
        }
    }

    /// One request, one decoded response.
    pub fn roundtrip(&mut self, req: &Request) -> Response {
        self.send_line(&req.encode());
        let line = self.recv_line().expect("server closed without replying");
        Response::decode(&line).expect("response line decodes")
    }
}
