//! Many-client stress test: nine concurrent clients hammer one daemon
//! with a mix of identical keys (cache contention), per-client cold
//! keys, and warm/cold interleavings, then every response is compared
//! byte-for-byte against a direct `Session` run of the same
//! configuration. Afterwards the cache directory is reopened cold and
//! every entry is re-verified against a fresh recomputation — the
//! concurrent stores must not have left a corrupt entry behind.

mod util;

use std::collections::BTreeMap;
use std::sync::Arc;

use instrep_core::service::{report_json, scale_windows, Request, Response};
use instrep_core::{AnalysisCache, AnalysisConfig, CacheOutcome, Session, TelemetryRegistry};
use instrep_serve::{ServeConfig, Server};
use instrep_workloads::Scale;
use util::{scratch_dir, socket_path, Client};

const CLIENTS: usize = 9;
const REQUESTS_PER_CLIENT: usize = 3;

/// The (workload, seed) a given client uses for its j-th request:
/// clients 0/3/6 all hit the same key, clients 1/4/7 get cold
/// per-client keys, clients 2/5/8 alternate between two shared keys.
fn key_for(client: usize, j: usize) -> (&'static str, u64) {
    match client % 3 {
        0 => ("compress", 1998),
        1 => ("li", 2000 + client as u64),
        _ => ("interp", 1998 + (j % 2) as u64),
    }
}

#[test]
fn many_clients_share_one_cache_byte_identically() {
    let cache_dir = scratch_dir("stress-cache");
    let mut cfg = ServeConfig::new(socket_path("stress"));
    cfg.workers = 4;
    cfg.queue = 64;
    cfg.cache_dir = Some(cache_dir.clone());
    let registry = Arc::new(TelemetryRegistry::new());
    let server = Server::start(cfg, Arc::clone(&registry)).unwrap();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let socket = server.socket().to_path_buf();
            std::thread::spawn(move || {
                let mut c = Client::connect(&socket);
                let mut out = Vec::new();
                for j in 0..REQUESTS_PER_CLIENT {
                    let (name, seed) = key_for(client, j);
                    let id = (client * 10 + j) as u64;
                    match c.roundtrip(&Request::workload(id, name).seed(seed)) {
                        Response::Report(p) => {
                            assert_eq!(p.id, id, "responses answer in request order");
                            out.push((name, seed, p));
                        }
                        Response::Error(e) => panic!("client {client}: unexpected error {e:?}"),
                    }
                }
                out
            })
        })
        .collect();

    let mut by_key: BTreeMap<(&str, u64), Vec<String>> = BTreeMap::new();
    let mut hits = 0usize;
    let mut misses = 0usize;
    for h in handles {
        for (name, seed, p) in h.join().unwrap() {
            match p.cache {
                CacheOutcome::Hit => hits += 1,
                CacheOutcome::Miss => misses += 1,
                other => panic!("unexpected cache outcome {other:?}"),
            }
            by_key.entry((name, seed)).or_default().push(p.report);
        }
    }
    server.shutdown();
    server.join().unwrap();

    assert_eq!(hits + misses, CLIENTS * REQUESTS_PER_CLIENT);
    // Every key misses at least once (the cache started empty); repeat
    // keys must have produced at least some hits across 27 requests.
    assert!(misses >= by_key.len());
    assert!(hits > 0, "no request ever hit the shared cache");

    // Byte-identity: each daemon response equals a direct Session run
    // of the same image/input/config on this thread.
    let (skip, window) = scale_windows("tiny").unwrap();
    let cfg = AnalysisConfig { skip, window, ..AnalysisConfig::default() };
    for ((name, seed), reports) in &by_key {
        let wl = instrep_workloads::by_name(name).unwrap();
        let image = wl.build().unwrap();
        let direct = Session::new(cfg).run_one(&image, wl.input(Scale::Tiny, *seed)).unwrap();
        let expect = report_json(&direct.report);
        for report in reports {
            assert_eq!(report, &expect, "daemon report for {name}/{seed} diverged from direct run");
        }
    }

    // Cache integrity: reopen the directory cold and re-verify every
    // entry against a recomputation. A corrupt or torn entry would
    // surface as VerifyMismatch (or a miss).
    let cache = AnalysisCache::open(&cache_dir).unwrap();
    for (name, seed) in by_key.keys() {
        let wl = instrep_workloads::by_name(name).unwrap();
        let image = wl.build().unwrap();
        let ir = Session::new(cfg)
            .cache(&cache)
            .cache_verify(true)
            .run_one(&image, wl.input(Scale::Tiny, *seed))
            .unwrap();
        assert_eq!(
            ir.cache,
            CacheOutcome::VerifyOk,
            "stored entry for {name}/{seed} did not verify"
        );
    }
    std::fs::remove_dir_all(cache_dir).ok();
}
