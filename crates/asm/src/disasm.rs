//! Disassembly listings for assembled images.
//!
//! The inverse companion to [`crate::assemble`]: renders an [`Image`]'s
//! text segment as annotated assembly, resolving function entries and
//! labels from the image's metadata. Per-instruction text comes from
//! [`instrep_isa::Insn`]'s `Display`, which the assembler accepts back
//! verbatim (see the `roundtrip` property test).

use std::fmt::Write as _;

use instrep_isa::abi::TEXT_BASE;
use instrep_isa::{decode, Insn};

use crate::image::Image;

/// Renders one instruction with pc-relative targets resolved to absolute
/// addresses in a trailing comment.
fn render_insn(pc: u32, insn: &Insn) -> String {
    match insn {
        Insn::Branch { off, .. } => {
            let target = pc.wrapping_add(4).wrapping_add((*off as i32 as u32) << 2);
            format!("{insn:<32}# -> {target:#010x}")
        }
        _ => insn.to_string(),
    }
}

/// Disassembles the instructions in `[start, end)` (absolute addresses).
///
/// Undecodable words render as `.word 0x...` so the listing is total.
///
/// # Examples
///
/// ```
/// use instrep_asm::{assemble, disassemble_range};
/// use instrep_isa::abi::TEXT_BASE;
///
/// let image = assemble(".text\n__start: addi $t0, $zero, 5\njr $ra\n")?;
/// let listing = disassemble_range(&image, TEXT_BASE, image.text_end());
/// assert!(listing.contains("addi $t0, $zero, 5"));
/// assert!(listing.contains("__start"));
/// # Ok::<(), instrep_asm::AsmError>(())
/// ```
pub fn disassemble_range(image: &Image, start: u32, end: u32) -> String {
    let mut out = String::new();
    let mut pc = start.max(TEXT_BASE) & !3;
    let end = end.min(image.text_end());
    while pc < end {
        let index = ((pc - TEXT_BASE) / 4) as usize;
        // Function headers and plain labels.
        if let Some(f) = image.funcs.iter().find(|f| f.entry == pc) {
            let _ =
                writeln!(out, "\n{}:    # .func arity={} size={}", f.name, f.arity, f.size_insns());
        } else if let Some(name) = image.symbols.name_at(pc) {
            let _ = writeln!(out, "{name}:");
        }
        let word = image.text[index];
        match decode(word) {
            Ok(insn) => {
                let _ = writeln!(out, "  {pc:#010x}:  {}", render_insn(pc, &insn));
            }
            Err(_) => {
                let _ = writeln!(out, "  {pc:#010x}:  .word {word:#010x}");
            }
        }
        pc += 4;
    }
    out
}

/// Disassembles the whole text segment.
///
/// # Examples
///
/// ```
/// use instrep_asm::{assemble, disassemble};
///
/// let image = assemble(".text\n.func f, 0\nf: jr $ra\n.endfunc\n")?;
/// let listing = disassemble(&image);
/// assert!(listing.contains("f:"));
/// assert!(listing.contains("jr $ra"));
/// # Ok::<(), instrep_asm::AsmError>(())
/// ```
pub fn disassemble(image: &Image) -> String {
    disassemble_range(image, TEXT_BASE, image.text_end())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn listing_contains_every_instruction() {
        let image = assemble(
            r#"
            .text
            .func f, 1
            f:  addi $v0, $a0, 1
                jr $ra
            .endfunc
            __start:
                li $a0, 3
                jal f
                li $v0, 0
                syscall
            "#,
        )
        .unwrap();
        let listing = disassemble(&image);
        let lines: Vec<&str> = listing.lines().filter(|l| l.contains("0x00")).collect();
        assert_eq!(lines.len(), image.text.len());
        assert!(listing.contains("f:"));
        assert!(listing.contains("__start:"));
        assert!(listing.contains("arity=1"));
        assert!(listing.contains("syscall"));
    }

    #[test]
    fn branch_targets_annotated() {
        let image = assemble(".text\nloop: addi $t0, $t0, 1\nbne $t0, $t1, loop\n").unwrap();
        let listing = disassemble(&image);
        assert!(listing.contains("# -> 0x00400000"), "{listing}");
    }

    #[test]
    fn range_clamps() {
        let image = assemble(".text\nnop\nnop\nnop\n").unwrap();
        let all = disassemble_range(&image, 0, u32::MAX);
        assert_eq!(all.lines().count(), 3);
        let one = disassemble_range(
            &image,
            instrep_isa::abi::TEXT_BASE + 4,
            instrep_isa::abi::TEXT_BASE + 8,
        );
        assert_eq!(one.lines().count(), 1);
    }
}
