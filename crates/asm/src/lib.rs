#![warn(missing_docs)]
//! Assembler for the SRV32 ISA.
//!
//! Translates assembly text into an executable [`Image`] ready for the
//! simulator. The assembler works in three phases: parse (line by line,
//! with labels and directives), layout (assign addresses to data and text
//! items; pseudo-instruction expansion sizes are decided here), and encode
//! (resolve symbols and emit binary instruction words).
//!
//! # Syntax
//!
//! * Sections: `.text`, `.data`.
//! * Labels: `name:` at line start; multiple labels per address allowed.
//! * Data directives: `.word`, `.half`, `.byte`, `.ascii`, `.asciiz`,
//!   `.space N`, `.align N`, `.globl name` (accepted, no-op).
//! * Function metadata: `.func name, arity` / `.endfunc` bracket a
//!   function's instructions; the bounds, name, and arity are recorded in
//!   [`Image::funcs`] for the repetition analyses.
//! * Line provenance: `.loc N` marks subsequent instructions as compiled
//!   from source line `N` (`.loc 0` clears the marker); the per-word
//!   table lands in [`Image::lines`] for source-level profiling.
//!   Occupies no space.
//! * Native instructions use the mnemonics of [`instrep_isa`].
//! * Pseudo-instructions: `li`, `la`, `move`, `nop`, `not`, `neg`, `b`,
//!   `beqz`, `bnez`, `blt`, `ble`, `bgt`, `bge` (+ unsigned `u` forms),
//!   `seq`, `sne`, and label-addressed `lw`/`sw` etc.
//! * `%hi(sym)`, `%lo(sym)`, and `%gprel(sym)` relocation operators in
//!   immediate positions.
//!
//! # Examples
//!
//! ```
//! use instrep_asm::assemble;
//!
//! let image = assemble(r#"
//!     .data
//! answer: .word 42
//!     .text
//!     .globl __start
//! __start:
//!     lw   $a0, answer
//!     li   $v0, 0          # exit
//!     syscall
//! "#)?;
//! assert_eq!(image.text.len(), 3);
//! # Ok::<(), instrep_asm::AsmError>(())
//! ```

mod disasm;
mod error;
mod image;
mod layout;
mod parse;

pub use disasm::{disassemble, disassemble_range};
pub use error::AsmError;
pub use image::{FuncMeta, Image, SymbolTable};

use instrep_isa::abi;

/// Assembles a source program into an executable image.
///
/// The entry point is the `__start` symbol if defined, otherwise the first
/// text instruction.
///
/// # Errors
///
/// Returns [`AsmError`] (with a line number) for syntax errors, unknown
/// mnemonics or directives, undefined or duplicate symbols, and
/// out-of-range immediates or branch offsets.
pub fn assemble(src: &str) -> Result<Image, AsmError> {
    let items = parse::parse(src)?;
    let laid = layout::layout(items)?;
    let mut image = layout::encode(laid)?;
    image.entry = image.symbols.get("__start").unwrap_or(abi::TEXT_BASE);
    Ok(image)
}
