use std::fmt;

/// Error produced while assembling a program.
///
/// Carries the 1-based source line the problem was found on (0 when the
/// error is not attributable to a single line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: u32,
    message: String,
}

impl AsmError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> AsmError {
        AsmError { line, message: message.into() }
    }

    /// The 1-based source line of the error, or 0 if global.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// The human-readable problem description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "asm error: {}", self.message)
        } else {
            write!(f, "asm error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = AsmError::new(7, "bad register");
        assert_eq!(e.to_string(), "asm error at line 7: bad register");
        assert_eq!(e.line(), 7);
        assert_eq!(e.message(), "bad register");
        let g = AsmError::new(0, "no text section");
        assert_eq!(g.to_string(), "asm error: no text section");
    }
}
