use instrep_isa::Reg;

use crate::error::AsmError;

/// Assembly section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Section {
    Text,
    Data,
}

/// A value expression in a data directive or immediate position:
/// a constant, or a symbol plus constant offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Expr {
    Imm(i64),
    Sym(String, i64),
}

/// A relocation operator applied to a symbol expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Reloc {
    /// Full 32-bit value (only valid where a 32-bit field exists).
    None,
    /// Upper 16 bits (`%hi`), paired with `%lo` via `ori`.
    Hi,
    /// Lower 16 bits (`%lo`), zero-extended semantics.
    Lo,
    /// Offset from the global pointer (`%gprel`).
    GpRel,
}

/// One instruction operand as parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Operand {
    Reg(Reg),
    /// Immediate or symbolic value with an optional relocation operator.
    Val(Reloc, Expr),
    /// `off(base)` memory reference.
    Mem {
        off: Expr,
        base: Reg,
    },
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Stmt {
    Label(String),
    Section(Section),
    Word(Vec<Expr>),
    Half(Vec<i64>),
    Byte(Vec<i64>),
    Ascii(Vec<u8>),
    Asciiz(Vec<u8>),
    Space(u32),
    Align(u32),
    Func {
        name: String,
        arity: u8,
    },
    EndFunc,
    /// `.loc N`: subsequent instructions originate from source line `N`.
    Loc(u32),
    Insn {
        mnemonic: String,
        operands: Vec<Operand>,
    },
}

/// A statement with its source line for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Item {
    pub line: u32,
    pub stmt: Stmt,
}

fn err(line: u32, msg: impl Into<String>) -> AsmError {
    AsmError::new(line, msg)
}

/// Splits a statement body on top-level commas (quotes and parentheses
/// protect commas inside them).
fn split_operands(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut in_char = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str || in_char => escaped = true,
            '"' if !in_char => in_str = !in_str,
            '\'' if !in_str => in_char = !in_char,
            '(' if !in_str && !in_char => depth += 1,
            ')' if !in_str && !in_char => depth = depth.saturating_sub(1),
            ',' if !in_str && !in_char && depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() || !out.is_empty() {
        out.push(last);
    }
    out
}

/// Strips `#` / `//` comments outside string and character literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut in_char = false;
    let mut escaped = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if escaped {
            escaped = false;
            i += 1;
            continue;
        }
        match c {
            '\\' if in_str || in_char => escaped = true,
            '"' if !in_char => in_str = !in_str,
            '\'' if !in_str => in_char = !in_char,
            '#' if !in_str && !in_char => return &line[..i],
            '/' if !in_str && !in_char && bytes.get(i + 1) == Some(&b'/') => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
}

/// Parses an integer literal: decimal, `0x` hex, `0b` binary, `'c'` char,
/// with optional leading `-`.
pub(crate) fn parse_int(s: &str, line: u32) -> Result<i64, AsmError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest.trim()),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).map_err(|_| err(line, format!("bad hex literal `{s}`")))?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).map_err(|_| err(line, format!("bad binary literal `{s}`")))?
    } else if body.starts_with('\'') {
        let inner = body
            .strip_prefix('\'')
            .and_then(|b| b.strip_suffix('\''))
            .ok_or_else(|| err(line, format!("bad char literal `{s}`")))?;
        let bytes = unescape(inner, line)?;
        if bytes.len() != 1 {
            return Err(err(line, format!("char literal `{s}` must be one byte")));
        }
        i64::from(bytes[0])
    } else {
        body.parse::<i64>().map_err(|_| err(line, format!("bad integer literal `{s}`")))?
    };
    Ok(if neg { -v } else { v })
}

/// Parses `sym`, `sym+N`, `sym-N`, or a bare integer into an [`Expr`].
fn parse_expr(s: &str, line: u32) -> Result<Expr, AsmError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(err(line, "empty expression"));
    }
    let first = s.chars().next().unwrap();
    if first.is_ascii_digit() || first == '-' || first == '\'' {
        return Ok(Expr::Imm(parse_int(s, line)?));
    }
    // Symbol with optional +/- offset.
    if let Some(pos) = s.find(['+', '-']) {
        let (name, off) = s.split_at(pos);
        let name = name.trim();
        if !is_ident(name) {
            return Err(err(line, format!("bad symbol `{name}`")));
        }
        return Ok(Expr::Sym(name.to_string(), parse_int(off, line)?));
    }
    if !is_ident(s) {
        return Err(err(line, format!("bad symbol `{s}`")));
    }
    Ok(Expr::Sym(s.to_string(), 0))
}

/// Parses one instruction operand.
fn parse_operand(s: &str, line: u32) -> Result<Operand, AsmError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(err(line, "empty operand"));
    }
    if s.starts_with('$') {
        return Ok(Operand::Reg(s.parse::<Reg>().map_err(|e| err(line, e.to_string()))?));
    }
    // Relocation operators.
    for (prefix, reloc) in [("%hi(", Reloc::Hi), ("%lo(", Reloc::Lo), ("%gprel(", Reloc::GpRel)] {
        if let Some(rest) = s.strip_prefix(prefix) {
            let inner =
                rest.strip_suffix(')').ok_or_else(|| err(line, format!("missing `)` in `{s}`")))?;
            return Ok(Operand::Val(reloc, parse_expr(inner, line)?));
        }
    }
    // off(base) memory reference.
    if let Some(open) = s.find('(') {
        if s.ends_with(')') {
            let off_str = s[..open].trim();
            let base_str = s[open + 1..s.len() - 1].trim();
            let off = if off_str.is_empty() { Expr::Imm(0) } else { parse_expr(off_str, line)? };
            let base = base_str.parse::<Reg>().map_err(|e| err(line, e.to_string()))?;
            return Ok(Operand::Mem { off, base });
        }
    }
    Ok(Operand::Val(Reloc::None, parse_expr(s, line)?))
}

/// Decodes the escapes in a string/char literal body.
fn unescape(s: &str, line: u32) -> Result<Vec<u8>, AsmError> {
    let mut out = Vec::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            continue;
        }
        let esc = chars.next().ok_or_else(|| err(line, "dangling escape"))?;
        out.push(match esc {
            'n' => b'\n',
            't' => b'\t',
            'r' => b'\r',
            '0' => 0,
            '\\' => b'\\',
            '\'' => b'\'',
            '"' => b'"',
            other => return Err(err(line, format!("unknown escape `\\{other}`"))),
        });
    }
    Ok(out)
}

fn parse_string_literal(s: &str, line: u32) -> Result<Vec<u8>, AsmError> {
    let inner = s
        .trim()
        .strip_prefix('"')
        .and_then(|b| b.strip_suffix('"'))
        .ok_or_else(|| err(line, format!("expected string literal, got `{s}`")))?;
    unescape(inner, line)
}

fn parse_int_list(body: &str, line: u32) -> Result<Vec<i64>, AsmError> {
    split_operands(body).into_iter().map(|p| parse_int(p, line)).collect()
}

fn parse_directive(dir: &str, body: &str, line: u32) -> Result<Option<Stmt>, AsmError> {
    let stmt = match dir {
        ".text" => Stmt::Section(Section::Text),
        ".data" => Stmt::Section(Section::Data),
        ".word" => Stmt::Word(
            split_operands(body)
                .into_iter()
                .map(|p| parse_expr(p, line))
                .collect::<Result<_, _>>()?,
        ),
        ".half" => Stmt::Half(parse_int_list(body, line)?),
        ".byte" => Stmt::Byte(parse_int_list(body, line)?),
        ".ascii" => Stmt::Ascii(parse_string_literal(body, line)?),
        ".asciiz" => {
            let mut bytes = parse_string_literal(body, line)?;
            bytes.push(0);
            Stmt::Asciiz(bytes)
        }
        ".space" => {
            let n = parse_int(body, line)?;
            if !(0..=(1 << 30)).contains(&n) {
                return Err(err(line, format!(".space size {n} out of range")));
            }
            Stmt::Space(n as u32)
        }
        ".align" => {
            let n = parse_int(body, line)?;
            if !(0..=16).contains(&n) {
                return Err(err(line, format!(".align {n} out of range")));
            }
            Stmt::Align(n as u32)
        }
        ".globl" | ".global" | ".ent" | ".end" | ".set" => return Ok(None), // accepted, ignored
        ".func" => {
            let parts = split_operands(body);
            if parts.len() != 2 {
                return Err(err(line, ".func expects `name, arity`"));
            }
            if !is_ident(parts[0]) {
                return Err(err(line, format!("bad function name `{}`", parts[0])));
            }
            let arity = parse_int(parts[1], line)?;
            if !(0..=16).contains(&arity) {
                return Err(err(line, format!("arity {arity} out of range")));
            }
            Stmt::Func { name: parts[0].to_string(), arity: arity as u8 }
        }
        ".endfunc" => Stmt::EndFunc,
        ".loc" => {
            // `.loc 0` explicitly clears line information (e.g. before
            // hand-written runtime code appended to compiler output).
            let n = parse_int(body, line)?;
            if !(0..=i64::from(u32::MAX)).contains(&n) {
                return Err(err(line, format!(".loc line {n} out of range")));
            }
            Stmt::Loc(n as u32)
        }
        other => return Err(err(line, format!("unknown directive `{other}`"))),
    };
    Ok(Some(stmt))
}

/// Parses source text into a list of items.
pub(crate) fn parse(src: &str) -> Result<Vec<Item>, AsmError> {
    let mut items = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = (idx + 1) as u32;
        let mut rest = strip_comment(raw).trim();
        // Leading labels.
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let head = head.trim();
            if !is_ident(head) {
                break;
            }
            items.push(Item { line, stmt: Stmt::Label(head.to_string()) });
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let (head, body) = match rest.find(char::is_whitespace) {
            Some(pos) => (&rest[..pos], rest[pos..].trim()),
            None => (rest, ""),
        };
        if head.starts_with('.') {
            if let Some(stmt) = parse_directive(head, body, line)? {
                items.push(Item { line, stmt });
            }
        } else {
            let operands = if body.is_empty() {
                Vec::new()
            } else {
                split_operands(body)
                    .into_iter()
                    .map(|p| parse_operand(p, line))
                    .collect::<Result<_, _>>()?
            };
            items.push(Item {
                line,
                stmt: Stmt::Insn { mnemonic: head.to_ascii_lowercase(), operands },
            });
        }
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_comments() {
        let items = parse("a: b: add $v0, $a0, $a1 # sum\n// whole-line\n").unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].stmt, Stmt::Label("a".into()));
        assert_eq!(items[1].stmt, Stmt::Label("b".into()));
        match &items[2].stmt {
            Stmt::Insn { mnemonic, operands } => {
                assert_eq!(mnemonic, "add");
                assert_eq!(operands.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn directives() {
        let src = r#"
            .data
            .word 1, -2, 0x10, sym, sym+8
            .byte 'a', '\n', 255
            .half 1000
            .asciiz "hi\0\\"
            .space 16
            .align 2
            .globl main
        "#;
        let items = parse(src).unwrap();
        let kinds: Vec<_> = items.iter().map(|i| &i.stmt).collect();
        assert!(matches!(kinds[0], Stmt::Section(Section::Data)));
        match kinds[1] {
            Stmt::Word(es) => {
                assert_eq!(es[0], Expr::Imm(1));
                assert_eq!(es[1], Expr::Imm(-2));
                assert_eq!(es[2], Expr::Imm(16));
                assert_eq!(es[3], Expr::Sym("sym".into(), 0));
                assert_eq!(es[4], Expr::Sym("sym".into(), 8));
            }
            other => panic!("unexpected {other:?}"),
        }
        match kinds[2] {
            Stmt::Byte(bs) => assert_eq!(bs, &[i64::from(b'a'), 10, 255]),
            other => panic!("unexpected {other:?}"),
        }
        match kinds[4] {
            Stmt::Asciiz(bs) => assert_eq!(bs, &[b'h', b'i', 0, b'\\', 0]),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(kinds[5], Stmt::Space(16)));
        assert!(matches!(kinds[6], Stmt::Align(2)));
        assert_eq!(items.len(), 7); // .globl dropped
    }

    #[test]
    fn operand_forms() {
        let items = parse("lw $t0, -8($sp)\nlui $t1, %hi(tab)\naddi $t2, $gp, %gprel(x)").unwrap();
        match &items[0].stmt {
            Stmt::Insn { operands, .. } => {
                assert_eq!(operands[0], Operand::Reg(Reg::T0));
                assert_eq!(operands[1], Operand::Mem { off: Expr::Imm(-8), base: Reg::SP });
            }
            other => panic!("unexpected {other:?}"),
        }
        match &items[1].stmt {
            Stmt::Insn { operands, .. } => {
                assert_eq!(operands[1], Operand::Val(Reloc::Hi, Expr::Sym("tab".into(), 0)));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &items[2].stmt {
            Stmt::Insn { operands, .. } => {
                assert_eq!(operands[2], Operand::Val(Reloc::GpRel, Expr::Sym("x".into(), 0)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn func_directives() {
        let items = parse(".func foo, 3\n.endfunc").unwrap();
        assert_eq!(items[0].stmt, Stmt::Func { name: "foo".into(), arity: 3 });
        assert_eq!(items[1].stmt, Stmt::EndFunc);
        assert!(parse(".func foo").is_err());
        assert!(parse(".func foo, 99").is_err());
    }

    #[test]
    fn error_cases() {
        assert!(parse("lw $t0, (").is_err());
        assert!(parse("add $bogus, $a0, $a1").is_err());
        assert!(parse(".word 0x").is_err());
        assert!(parse(".wat 3").is_err());
        assert!(parse(".asciiz nope").is_err());
        let e = parse("\n\nadd $t0, $zz, $t1").unwrap_err();
        assert_eq!(e.line(), 3);
    }

    #[test]
    fn char_and_negative_ints() {
        assert_eq!(parse_int("'A'", 1).unwrap(), 65);
        assert_eq!(parse_int("'\\n'", 1).unwrap(), 10);
        assert_eq!(parse_int("-0x10", 1).unwrap(), -16);
        assert_eq!(parse_int("0b101", 1).unwrap(), 5);
        assert!(parse_int("''", 1).is_err());
    }

    #[test]
    fn commas_in_strings_protected() {
        let items = parse(r#".asciiz "a,b""#).unwrap();
        match &items[0].stmt {
            Stmt::Asciiz(bs) => assert_eq!(bs, &[b'a', b',', b'b', 0]),
            other => panic!("unexpected {other:?}"),
        }
    }
}
