//! Address assignment and binary emission.
//!
//! Layout runs in two passes over the parsed items: pass A walks every
//! `.data` item and assigns data addresses (so pseudo-instruction
//! expansions can decide gp-relative vs. absolute addressing), pass B
//! walks `.text` items measuring expansion sizes and assigning text label
//! addresses. [`encode`] then re-expands with every symbol resolved and
//! emits binary.

use instrep_isa::abi::{self, GP_INIT};
use instrep_isa::{AluOp, BranchOp, ImmOp, Insn, MemOp, MemWidth, Reg, ShiftOp};

use crate::error::AsmError;
use crate::image::{FuncMeta, Image, SymbolTable};
use crate::parse::{Expr, Item, Operand, Reloc, Section, Stmt};

fn err(line: u32, msg: impl Into<String>) -> AsmError {
    AsmError::new(line, msg)
}

/// Items plus the results of the two layout passes.
pub(crate) struct Laid {
    items: Vec<Item>,
    symbols: SymbolTable,
    data_len: u32,
    init_ranges: Vec<std::ops::Range<u32>>,
    funcs: Vec<FuncMeta>,
}

/// Size in bytes a data statement occupies (before alignment).
fn data_stmt_bytes(stmt: &Stmt) -> Option<(u32, u32, bool)> {
    // (alignment, size, initialized)
    match stmt {
        Stmt::Word(es) => Some((4, 4 * es.len() as u32, true)),
        Stmt::Half(hs) => Some((2, 2 * hs.len() as u32, true)),
        Stmt::Byte(bs) => Some((1, bs.len() as u32, true)),
        Stmt::Ascii(bs) | Stmt::Asciiz(bs) => Some((1, bs.len() as u32, true)),
        Stmt::Space(n) => Some((1, *n, false)),
        _ => None,
    }
}

fn align_to(cursor: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two());
    (cursor + align - 1) & !(align - 1)
}

/// Pass A + B: assign all addresses.
pub(crate) fn layout(items: Vec<Item>) -> Result<Laid, AsmError> {
    let mut symbols = SymbolTable::new();
    let mut init_ranges: Vec<std::ops::Range<u32>> = Vec::new();

    // Pass A: data addresses. Labels are held pending until the next data
    // item so that a label immediately before an aligned item points at
    // the post-alignment address.
    let mut section = Section::Text;
    let mut dcur: u32 = 0;
    let mut pending: Vec<(&str, u32)> = Vec::new(); // (name, line)
    for item in &items {
        match &item.stmt {
            Stmt::Section(s) => section = *s,
            Stmt::Label(name) if section == Section::Data => {
                pending.push((name, item.line));
            }
            Stmt::Align(n) if section == Section::Data => {
                dcur = align_to(dcur, 1 << n);
            }
            other if section == Section::Data => {
                if let Some((align, size, init)) = data_stmt_bytes(other) {
                    dcur = align_to(dcur, align);
                    for (name, line) in pending.drain(..) {
                        if !symbols.insert(name, abi::DATA_BASE + dcur) {
                            return Err(err(line, format!("duplicate symbol `{name}`")));
                        }
                    }
                    let start = abi::DATA_BASE + dcur;
                    if init && size > 0 {
                        match init_ranges.last_mut() {
                            Some(last) if last.end == start => last.end = start + size,
                            _ => init_ranges.push(start..start + size),
                        }
                    }
                    dcur += size;
                } else if matches!(other, Stmt::Insn { .. }) {
                    return Err(err(item.line, "instruction in .data section"));
                }
            }
            _ => {}
        }
    }
    for (name, line) in pending.drain(..) {
        if !symbols.insert(name, abi::DATA_BASE + dcur) {
            return Err(err(line, format!("duplicate symbol `{name}`")));
        }
    }
    let data_len = dcur;

    // Pass B: text addresses. Expansion sizes consult data symbols (all
    // known) and treat unknown symbols as non-gp-addressable, which is
    // exactly how resolved text addresses behave in the encode pass.
    let mut section = Section::Text;
    let mut tcur: u32 = 0; // instruction index
    let mut funcs: Vec<FuncMeta> = Vec::new();
    let mut open_func: Option<(String, u8, u32, u32)> = None; // name, arity, entry, line
    let mut scratch = Vec::new();
    for item in &items {
        match &item.stmt {
            Stmt::Section(s) => section = *s,
            Stmt::Label(name)
                if section == Section::Text && !symbols.insert(name, abi::TEXT_BASE + tcur * 4) =>
            {
                return Err(err(item.line, format!("duplicate symbol `{name}`")));
            }
            Stmt::Func { name, arity } if section == Section::Text => {
                if let Some((open, ..)) = &open_func {
                    return Err(err(
                        item.line,
                        format!("`.func {name}` while `.func {open}` is still open"),
                    ));
                }
                open_func = Some((name.clone(), *arity, abi::TEXT_BASE + tcur * 4, item.line));
            }
            Stmt::EndFunc if section == Section::Text => {
                let (name, arity, entry, _) =
                    open_func.take().ok_or_else(|| err(item.line, "`.endfunc` without `.func`"))?;
                funcs.push(FuncMeta { name, entry, end: abi::TEXT_BASE + tcur * 4, arity });
            }
            Stmt::Insn { mnemonic, operands } if section == Section::Text => {
                scratch.clear();
                expand(
                    mnemonic,
                    operands,
                    abi::TEXT_BASE + tcur * 4,
                    &symbols,
                    false,
                    &mut scratch,
                    item.line,
                )?;
                tcur += scratch.len() as u32;
            }
            // `.loc` markers occupy no space; they only matter to encode.
            Stmt::Loc(_) => {}
            Stmt::Insn { .. } | Stmt::Label(_) | Stmt::Func { .. } | Stmt::EndFunc => {}
            other if section == Section::Text && data_stmt_bytes(other).is_some() => {
                return Err(err(item.line, "data directive in .text section"));
            }
            _ => {}
        }
    }
    if let Some((name, _, _, line)) = open_func {
        return Err(err(line, format!("`.func {name}` never closed")));
    }

    Ok(Laid { items, symbols, data_len, init_ranges, funcs })
}

/// Final pass: emit binary text and data with all symbols resolved.
pub(crate) fn encode(laid: Laid) -> Result<Image, AsmError> {
    let Laid { items, symbols, data_len, init_ranges, funcs } = laid;
    let mut text: Vec<u32> = Vec::new();
    let mut lines: Vec<u32> = Vec::new();
    let mut cur_line: u32 = 0; // active `.loc` source line (0 = unknown)
    let mut data: Vec<u8> = vec![0; data_len as usize];
    let mut insns = Vec::new();

    let resolve_data = |expr: &Expr, line: u32| -> Result<i64, AsmError> {
        match expr {
            Expr::Imm(v) => Ok(*v),
            Expr::Sym(name, off) => {
                let addr = symbols
                    .get(name)
                    .ok_or_else(|| err(line, format!("undefined symbol `{name}`")))?;
                Ok(i64::from(addr) + off)
            }
        }
    };

    let mut section = Section::Text;
    let mut dcur: u32 = 0;
    for item in &items {
        match &item.stmt {
            Stmt::Section(s) => section = *s,
            Stmt::Loc(n) => cur_line = *n,
            Stmt::Insn { mnemonic, operands } if section == Section::Text => {
                insns.clear();
                expand(
                    mnemonic,
                    operands,
                    abi::TEXT_BASE + (text.len() as u32) * 4,
                    &symbols,
                    true,
                    &mut insns,
                    item.line,
                )?;
                text.extend(insns.iter().map(instrep_isa::encode));
                // Every word of a pseudo-expansion inherits the active line.
                lines.resize(text.len(), cur_line);
            }
            other if section == Section::Data => {
                let mut put = |bytes: &[u8], align: u32, dcur: &mut u32| {
                    *dcur = align_to(*dcur, align);
                    data[*dcur as usize..*dcur as usize + bytes.len()].copy_from_slice(bytes);
                    *dcur += bytes.len() as u32;
                };
                match other {
                    Stmt::Word(es) => {
                        dcur = align_to(dcur, 4);
                        for e in es {
                            let v = resolve_data(e, item.line)?;
                            if !(-(1i64 << 31)..(1i64 << 32)).contains(&v) {
                                return Err(err(item.line, format!("word value {v} out of range")));
                            }
                            put(&(v as u32).to_le_bytes(), 4, &mut dcur);
                        }
                    }
                    Stmt::Half(hs) => {
                        for &v in hs {
                            if !(-(1i64 << 15)..(1i64 << 16)).contains(&v) {
                                return Err(err(item.line, format!("half value {v} out of range")));
                            }
                            put(&(v as u16).to_le_bytes(), 2, &mut dcur);
                        }
                    }
                    Stmt::Byte(bs) => {
                        for &v in bs {
                            if !(-128..256).contains(&v) {
                                return Err(err(item.line, format!("byte value {v} out of range")));
                            }
                            put(&[v as u8], 1, &mut dcur);
                        }
                    }
                    Stmt::Ascii(bs) | Stmt::Asciiz(bs) => put(bs, 1, &mut dcur),
                    Stmt::Space(n) => dcur += n,
                    Stmt::Align(n) => dcur = align_to(dcur, 1 << n),
                    _ => {}
                }
            }
            _ => {}
        }
    }

    Ok(Image { text, lines, data, init_ranges, entry: abi::TEXT_BASE, symbols, funcs })
}

// ---------------------------------------------------------------------------
// Pseudo-instruction expansion
// ---------------------------------------------------------------------------

struct Ops<'a> {
    operands: &'a [Operand],
    mnemonic: &'a str,
    line: u32,
}

impl<'a> Ops<'a> {
    fn expect(&self, n: usize) -> Result<(), AsmError> {
        if self.operands.len() != n {
            return Err(err(
                self.line,
                format!("`{}` expects {n} operand(s), got {}", self.mnemonic, self.operands.len()),
            ));
        }
        Ok(())
    }

    fn reg(&self, i: usize) -> Result<Reg, AsmError> {
        match self.operands.get(i) {
            Some(Operand::Reg(r)) => Ok(*r),
            other => Err(err(
                self.line,
                format!("`{}` operand {} must be a register, got {other:?}", self.mnemonic, i + 1),
            )),
        }
    }

    fn val(&self, i: usize) -> Result<(Reloc, &Expr), AsmError> {
        match self.operands.get(i) {
            Some(Operand::Val(reloc, expr)) => Ok((*reloc, expr)),
            other => Err(err(
                self.line,
                format!("`{}` operand {} must be a value, got {other:?}", self.mnemonic, i + 1),
            )),
        }
    }
}

/// Resolves `expr` to a value. In non-strict (sizing) mode, undefined
/// symbols resolve to `None`.
fn resolve(
    expr: &Expr,
    symbols: &SymbolTable,
    strict: bool,
    line: u32,
) -> Result<Option<i64>, AsmError> {
    match expr {
        Expr::Imm(v) => Ok(Some(*v)),
        Expr::Sym(name, off) => match symbols.get(name) {
            Some(addr) => Ok(Some(i64::from(addr) + off)),
            None if strict => Err(err(line, format!("undefined symbol `{name}`"))),
            None => Ok(None),
        },
    }
}

fn check_i16(v: i64, line: u32, what: &str) -> Result<i16, AsmError> {
    i16::try_from(v).map_err(|_| err(line, format!("{what} {v} does not fit in 16 signed bits")))
}

fn check_u16(v: i64, line: u32, what: &str) -> Result<u16, AsmError> {
    u16::try_from(v).map_err(|_| err(line, format!("{what} {v} does not fit in 16 unsigned bits")))
}

/// True when `addr` can be addressed with a single signed 16-bit
/// displacement off the global pointer.
fn in_gp_window(addr: i64) -> bool {
    let delta = addr - i64::from(GP_INIT);
    (-0x8000..=0x7fff).contains(&delta) && addr >= i64::from(abi::DATA_BASE)
}

/// Emits `lui rd, hi; ori rd, rd, lo` materializing `value`.
fn emit_li32(rd: Reg, value: u32, out: &mut Vec<Insn>) {
    out.push(Insn::Lui { rt: rd, imm: (value >> 16) as u16 });
    out.push(Insn::imm(ImmOp::Ori, rd, rd, (value & 0xffff) as u16 as i16));
}

/// Expands one assembly statement into machine instructions.
///
/// In non-strict mode (layout sizing) undefined symbols are tolerated and
/// produce placeholder values; the *number* of emitted instructions is
/// identical to strict mode for the same inputs, which is the property the
/// two-pass layout relies on.
#[allow(clippy::too_many_lines)]
pub(crate) fn expand(
    mnemonic: &str,
    operands: &[Operand],
    pc: u32,
    symbols: &SymbolTable,
    strict: bool,
    out: &mut Vec<Insn>,
    line: u32,
) -> Result<(), AsmError> {
    let ops = Ops { operands, mnemonic, line };

    let alu3 = |op: AluOp, ops: &Ops, out: &mut Vec<Insn>| -> Result<(), AsmError> {
        ops.expect(3)?;
        out.push(Insn::alu(op, ops.reg(0)?, ops.reg(1)?, ops.reg(2)?));
        Ok(())
    };

    // Resolves a branch-target operand into a signed word offset from the
    // *next* instruction after `at_index` instructions of this expansion.
    let branch_off = |ops: &Ops, i: usize, at_index: u32| -> Result<i16, AsmError> {
        let (reloc, expr) = ops.val(i)?;
        if reloc != Reloc::None {
            return Err(err(line, "relocation operator not allowed on branch target"));
        }
        match expr {
            Expr::Imm(v) => check_i16(*v, line, "branch offset"),
            Expr::Sym(..) => {
                let Some(target) = resolve(expr, symbols, strict, line)? else {
                    return Ok(0);
                };
                let from = i64::from(pc) + i64::from(at_index) * 4 + 4;
                let delta = target - from;
                if delta % 4 != 0 {
                    return Err(err(line, "branch target not word-aligned"));
                }
                check_i16(delta / 4, line, "branch offset")
            }
        }
    };

    match mnemonic {
        // --- native three-register ALU ---
        "add" => alu3(AluOp::Add, &ops, out)?,
        "sub" => alu3(AluOp::Sub, &ops, out)?,
        "and" => alu3(AluOp::And, &ops, out)?,
        "or" => alu3(AluOp::Or, &ops, out)?,
        "xor" => alu3(AluOp::Xor, &ops, out)?,
        "nor" => alu3(AluOp::Nor, &ops, out)?,
        "slt" => alu3(AluOp::Slt, &ops, out)?,
        "sltu" => alu3(AluOp::Sltu, &ops, out)?,
        "sllv" => alu3(AluOp::Sllv, &ops, out)?,
        "srlv" => alu3(AluOp::Srlv, &ops, out)?,
        "srav" => alu3(AluOp::Srav, &ops, out)?,
        "mul" => alu3(AluOp::Mul, &ops, out)?,
        "div" => alu3(AluOp::Div, &ops, out)?,
        "rem" => alu3(AluOp::Rem, &ops, out)?,
        "divu" => alu3(AluOp::Divu, &ops, out)?,
        "remu" => alu3(AluOp::Remu, &ops, out)?,

        // --- immediates ---
        "addi" | "addiu" | "slti" | "sltiu" | "andi" | "ori" | "xori" => {
            ops.expect(3)?;
            let op = match mnemonic {
                "addi" | "addiu" => ImmOp::Addi,
                "slti" => ImmOp::Slti,
                "sltiu" => ImmOp::Sltiu,
                "andi" => ImmOp::Andi,
                "ori" => ImmOp::Ori,
                _ => ImmOp::Xori,
            };
            let rt = ops.reg(0)?;
            let rs = ops.reg(1)?;
            let (reloc, expr) = ops.val(2)?;
            let v = resolve(expr, symbols, strict, line)?.unwrap_or(0);
            let imm = match reloc {
                Reloc::None => {
                    if op.sign_extends() {
                        check_i16(v, line, "immediate")?
                    } else {
                        check_u16(v, line, "immediate")? as i16
                    }
                }
                Reloc::Lo => {
                    if op.sign_extends() {
                        return Err(err(line, "%lo only valid with logical immediates"));
                    }
                    (v as u32 & 0xffff) as u16 as i16
                }
                Reloc::GpRel => {
                    if op != ImmOp::Addi {
                        return Err(err(line, "%gprel only valid with addi"));
                    }
                    check_i16(v - i64::from(GP_INIT), line, "gp-relative offset")?
                }
                Reloc::Hi => return Err(err(line, "%hi only valid with lui")),
            };
            out.push(Insn::imm(op, rt, rs, imm));
        }

        // --- shifts ---
        "sll" | "srl" | "sra" => {
            ops.expect(3)?;
            let op = match mnemonic {
                "sll" => ShiftOp::Sll,
                "srl" => ShiftOp::Srl,
                _ => ShiftOp::Sra,
            };
            let rd = ops.reg(0)?;
            let rt = ops.reg(1)?;
            let (reloc, expr) = ops.val(2)?;
            if reloc != Reloc::None {
                return Err(err(line, "relocation not allowed on shift amount"));
            }
            let v = resolve(expr, symbols, strict, line)?.unwrap_or(0);
            if !(0..32).contains(&v) {
                return Err(err(line, format!("shift amount {v} out of range")));
            }
            out.push(Insn::Shift { op, rd, rt, shamt: v as u8 });
        }

        "lui" => {
            ops.expect(2)?;
            let rt = ops.reg(0)?;
            let (reloc, expr) = ops.val(1)?;
            let v = resolve(expr, symbols, strict, line)?.unwrap_or(0);
            let imm = match reloc {
                Reloc::Hi => ((v as u32) >> 16) as u16,
                Reloc::None => check_u16(v, line, "lui immediate")?,
                _ => return Err(err(line, "bad relocation on lui")),
            };
            out.push(Insn::Lui { rt, imm });
        }

        // --- memory ---
        "lb" | "lbu" | "lh" | "lhu" | "lw" | "sb" | "sh" | "sw" => {
            ops.expect(2)?;
            let op = match mnemonic {
                "lb" => MemOp::Load(MemWidth::Byte),
                "lbu" => MemOp::Load(MemWidth::ByteUnsigned),
                "lh" => MemOp::Load(MemWidth::Half),
                "lhu" => MemOp::Load(MemWidth::HalfUnsigned),
                "lw" => MemOp::Load(MemWidth::Word),
                "sb" => MemOp::Store(MemWidth::Byte),
                "sh" => MemOp::Store(MemWidth::Half),
                _ => MemOp::Store(MemWidth::Word),
            };
            let rt = ops.reg(0)?;
            match ops.operands.get(1) {
                Some(Operand::Mem { off, base }) => {
                    let v = resolve(off, symbols, strict, line)?.unwrap_or(0);
                    out.push(Insn::Mem {
                        op,
                        rt,
                        base: *base,
                        off: check_i16(v, line, "memory offset")?,
                    });
                }
                Some(Operand::Val(Reloc::None, expr @ Expr::Sym(..))) => {
                    // Bare-symbol addressing: gp-relative when possible,
                    // otherwise materialize the address into $at.
                    let addr = resolve(expr, symbols, strict, line)?;
                    match addr {
                        Some(a) if in_gp_window(a) => {
                            out.push(Insn::Mem {
                                op,
                                rt,
                                base: Reg::GP,
                                off: (a - i64::from(GP_INIT)) as i16,
                            });
                        }
                        Some(a) => {
                            emit_li32(Reg::AT, a as u32, out);
                            out.push(Insn::Mem { op, rt, base: Reg::AT, off: 0 });
                        }
                        None => {
                            emit_li32(Reg::AT, 0, out);
                            out.push(Insn::Mem { op, rt, base: Reg::AT, off: 0 });
                        }
                    }
                }
                other => {
                    return Err(err(line, format!("bad memory operand {other:?}")));
                }
            }
        }

        // --- branches ---
        "beq" | "bne" => {
            ops.expect(3)?;
            let op = if mnemonic == "beq" { BranchOp::Beq } else { BranchOp::Bne };
            let rs = ops.reg(0)?;
            let rt = ops.reg(1)?;
            let off = branch_off(&ops, 2, 0)?;
            out.push(Insn::Branch { op, rs, rt, off });
        }
        "blez" | "bgtz" | "bltz" | "bgez" => {
            ops.expect(2)?;
            let op = match mnemonic {
                "blez" => BranchOp::Blez,
                "bgtz" => BranchOp::Bgtz,
                "bltz" => BranchOp::Bltz,
                _ => BranchOp::Bgez,
            };
            let rs = ops.reg(0)?;
            let off = branch_off(&ops, 1, 0)?;
            out.push(Insn::Branch { op, rs, rt: Reg::ZERO, off });
        }

        // --- jumps ---
        "j" | "jal" => {
            ops.expect(1)?;
            let (reloc, expr) = ops.val(0)?;
            if reloc != Reloc::None {
                return Err(err(line, "relocation not allowed on jump target"));
            }
            let v = resolve(expr, symbols, strict, line)?.unwrap_or(i64::from(abi::TEXT_BASE));
            if v % 4 != 0 || !(0..(1i64 << 28)).contains(&v) {
                return Err(err(line, format!("jump target {v:#x} unencodable")));
            }
            out.push(Insn::Jump { link: mnemonic == "jal", target: (v as u32) >> 2 });
        }
        "jr" => {
            ops.expect(1)?;
            out.push(Insn::Jr { rs: ops.reg(0)? });
        }
        "jalr" => match ops.operands.len() {
            1 => out.push(Insn::Jalr { rd: Reg::RA, rs: ops.reg(0)? }),
            2 => out.push(Insn::Jalr { rd: ops.reg(0)?, rs: ops.reg(1)? }),
            n => return Err(err(line, format!("`jalr` expects 1 or 2 operands, got {n}"))),
        },

        "syscall" => {
            ops.expect(0)?;
            out.push(Insn::Syscall);
        }
        "break" => {
            ops.expect(0)?;
            out.push(Insn::Break);
        }

        // --- pseudo-instructions ---
        "li" => {
            ops.expect(2)?;
            let rd = ops.reg(0)?;
            let (reloc, expr) = ops.val(1)?;
            if reloc != Reloc::None {
                return Err(err(line, "relocation not allowed on li"));
            }
            let v = resolve(expr, symbols, strict, line)?.unwrap_or(0);
            if !(-(1i64 << 31)..(1i64 << 32)).contains(&v) {
                return Err(err(line, format!("li value {v} out of 32-bit range")));
            }
            let u = v as u32;
            if i16::try_from(v).is_ok() {
                out.push(Insn::imm(ImmOp::Addi, rd, Reg::ZERO, v as i16));
            } else if u16::try_from(v).is_ok() {
                out.push(Insn::imm(ImmOp::Ori, rd, Reg::ZERO, v as u16 as i16));
            } else {
                emit_li32(rd, u, out);
            }
        }
        "la" => {
            ops.expect(2)?;
            let rd = ops.reg(0)?;
            let (reloc, expr) = ops.val(1)?;
            if reloc != Reloc::None {
                return Err(err(line, "relocation not allowed on la"));
            }
            match resolve(expr, symbols, strict, line)? {
                Some(a) if in_gp_window(a) => {
                    out.push(Insn::imm(ImmOp::Addi, rd, Reg::GP, (a - i64::from(GP_INIT)) as i16));
                }
                Some(a) => emit_li32(rd, a as u32, out),
                None => emit_li32(rd, 0, out),
            }
        }
        "move" => {
            ops.expect(2)?;
            out.push(Insn::alu(AluOp::Or, ops.reg(0)?, ops.reg(1)?, Reg::ZERO));
        }
        "nop" => {
            ops.expect(0)?;
            out.push(Insn::Shift { op: ShiftOp::Sll, rd: Reg::ZERO, rt: Reg::ZERO, shamt: 0 });
        }
        "not" => {
            ops.expect(2)?;
            out.push(Insn::alu(AluOp::Nor, ops.reg(0)?, ops.reg(1)?, Reg::ZERO));
        }
        "neg" => {
            ops.expect(2)?;
            out.push(Insn::alu(AluOp::Sub, ops.reg(0)?, Reg::ZERO, ops.reg(1)?));
        }
        "b" => {
            ops.expect(1)?;
            let off = branch_off(&ops, 0, 0)?;
            out.push(Insn::Branch { op: BranchOp::Beq, rs: Reg::ZERO, rt: Reg::ZERO, off });
        }
        "beqz" | "bnez" => {
            ops.expect(2)?;
            let op = if mnemonic == "beqz" { BranchOp::Beq } else { BranchOp::Bne };
            let rs = ops.reg(0)?;
            let off = branch_off(&ops, 1, 0)?;
            out.push(Insn::Branch { op, rs, rt: Reg::ZERO, off });
        }
        "blt" | "bge" | "bgt" | "ble" | "bltu" | "bgeu" | "bgtu" | "bleu" => {
            ops.expect(3)?;
            let unsigned = mnemonic.ends_with('u');
            let base = if unsigned { &mnemonic[..3] } else { mnemonic };
            let cmp = if unsigned { AluOp::Sltu } else { AluOp::Slt };
            let rs = ops.reg(0)?;
            let rt = ops.reg(1)?;
            // blt: slt at,rs,rt; bne  |  bge: slt at,rs,rt; beq
            // bgt: slt at,rt,rs; bne  |  ble: slt at,rt,rs; beq
            let (a, b2, branch) = match base {
                "blt" => (rs, rt, BranchOp::Bne),
                "bge" => (rs, rt, BranchOp::Beq),
                "bgt" => (rt, rs, BranchOp::Bne),
                _ => (rt, rs, BranchOp::Beq),
            };
            let off = branch_off(&ops, 2, 1)?;
            out.push(Insn::alu(cmp, Reg::AT, a, b2));
            out.push(Insn::Branch { op: branch, rs: Reg::AT, rt: Reg::ZERO, off });
        }
        "seq" => {
            ops.expect(3)?;
            let rd = ops.reg(0)?;
            out.push(Insn::alu(AluOp::Xor, rd, ops.reg(1)?, ops.reg(2)?));
            out.push(Insn::imm(ImmOp::Sltiu, rd, rd, 1));
        }
        "sne" => {
            ops.expect(3)?;
            let rd = ops.reg(0)?;
            out.push(Insn::alu(AluOp::Xor, rd, ops.reg(1)?, ops.reg(2)?));
            out.push(Insn::alu(AluOp::Sltu, rd, Reg::ZERO, rd));
        }

        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn asm(src: &str) -> Image {
        crate::assemble(src).unwrap()
    }

    #[test]
    fn simple_text_layout() {
        let img = asm(".text\nstart: add $t0, $t1, $t2\nnop\nend: jr $ra\n");
        assert_eq!(img.text.len(), 3);
        assert_eq!(img.symbols.get("start"), Some(abi::TEXT_BASE));
        assert_eq!(img.symbols.get("end"), Some(abi::TEXT_BASE + 8));
    }

    #[test]
    fn data_layout_and_alignment() {
        let img = asm(".data\nb: .byte 1\nw: .word 2\ns: .space 5\nz: .byte 3\n");
        // byte at 0, word aligned to 4, space at 8..13, byte at 13.
        assert_eq!(img.symbols.get("b"), Some(abi::DATA_BASE));
        assert_eq!(img.symbols.get("w"), Some(abi::DATA_BASE + 4));
        assert_eq!(img.symbols.get("s"), Some(abi::DATA_BASE + 8));
        assert_eq!(img.symbols.get("z"), Some(abi::DATA_BASE + 13));
        assert_eq!(img.data.len(), 14);
        assert_eq!(img.data[0], 1);
        assert_eq!(&img.data[4..8], &2u32.to_le_bytes());
        assert_eq!(img.data[13], 3);
        // init ranges: [0..1), then [4..8), then [13..14) -- space excluded.
        assert!(img.is_initialized(abi::DATA_BASE));
        assert!(!img.is_initialized(abi::DATA_BASE + 1)); // alignment pad
        assert!(img.is_initialized(abi::DATA_BASE + 4));
        assert!(!img.is_initialized(abi::DATA_BASE + 8)); // .space
        assert!(img.is_initialized(abi::DATA_BASE + 13));
    }

    #[test]
    fn word_with_symbol_refs() {
        let img = asm(".data\nptr: .word msg, msg+4\nmsg: .asciiz \"hello\"\n");
        let msg = img.symbols.get("msg").unwrap();
        assert_eq!(&img.data[0..4], &msg.to_le_bytes());
        assert_eq!(&img.data[4..8], &(msg + 4).to_le_bytes());
        assert_eq!(&img.data[8..14], b"hello\0");
    }

    #[test]
    fn li_expansion_sizes() {
        let img = asm(".text\nli $t0, 5\nli $t1, 0x8000\nli $t2, 0x12345678\nli $t3, -40000\n");
        // addi(1) + ori(1) + lui/ori(2) + lui/ori(2) = 6
        assert_eq!(img.text.len(), 6);
        use instrep_isa::decode;
        assert_eq!(decode(img.text[0]).unwrap(), Insn::imm(ImmOp::Addi, Reg::T0, Reg::ZERO, 5));
        assert_eq!(
            decode(img.text[1]).unwrap(),
            Insn::imm(ImmOp::Ori, Reg::T1, Reg::ZERO, 0x8000u16 as i16)
        );
        assert_eq!(decode(img.text[2]).unwrap(), Insn::Lui { rt: Reg::T2, imm: 0x1234 });
    }

    #[test]
    fn la_uses_gp_window() {
        let img = asm(".data\nx: .word 1\n.text\nla $t0, x\n");
        assert_eq!(img.text.len(), 1);
        let i = instrep_isa::decode(img.text[0]).unwrap();
        assert_eq!(i, Insn::imm(ImmOp::Addi, Reg::T0, Reg::GP, -0x8000));
    }

    #[test]
    fn la_far_data_uses_lui_ori() {
        let img = asm(".data\n.space 70000\nfar: .word 1\n.text\nla $t0, far\n");
        assert_eq!(img.text.len(), 2);
        let addr = img.symbols.get("far").unwrap();
        assert_eq!(
            instrep_isa::decode(img.text[0]).unwrap(),
            Insn::Lui { rt: Reg::T0, imm: (addr >> 16) as u16 }
        );
    }

    #[test]
    fn lw_bare_symbol_forms() {
        let img = asm(".data\nx: .word 7\n.text\nlw $t0, x\n");
        assert_eq!(img.text.len(), 1);
        let i = instrep_isa::decode(img.text[0]).unwrap();
        assert_eq!(
            i,
            Insn::Mem { op: MemOp::Load(MemWidth::Word), rt: Reg::T0, base: Reg::GP, off: -0x8000 }
        );
    }

    #[test]
    fn branch_offsets_and_compound_branches() {
        let img = asm(".text\nloop: addi $t0, $t0, 1\nblt $t0, $t1, loop\nj loop\n");
        assert_eq!(img.text.len(), 4); // addi, slt, bne, j
        let bne = instrep_isa::decode(img.text[2]).unwrap();
        // bne is at index 2; target loop at 0 => offset = 0 - (2+1) = -3.
        assert_eq!(bne, Insn::Branch { op: BranchOp::Bne, rs: Reg::AT, rt: Reg::ZERO, off: -3 });
        let j = instrep_isa::decode(img.text[3]).unwrap();
        assert_eq!(j, Insn::Jump { link: false, target: abi::TEXT_BASE >> 2 });
    }

    #[test]
    fn func_metadata() {
        let img = asm(
            ".text\n.func f, 2\nf: add $v0, $a0, $a1\njr $ra\n.endfunc\n.func g, 0\ng: jr $ra\n.endfunc\n",
        );
        assert_eq!(img.funcs.len(), 2);
        assert_eq!(img.funcs[0].name, "f");
        assert_eq!(img.funcs[0].arity, 2);
        assert_eq!(img.funcs[0].size_insns(), 2);
        assert_eq!(img.funcs[1].entry, abi::TEXT_BASE + 8);
        assert_eq!(img.func_at(abi::TEXT_BASE + 4).unwrap().name, "f");
        assert_eq!(img.func_at(abi::TEXT_BASE + 8).unwrap().name, "g");
    }

    #[test]
    fn entry_is_start_symbol() {
        let img = asm(".text\nnop\n__start: nop\n");
        assert_eq!(img.entry, abi::TEXT_BASE + 4);
    }

    #[test]
    fn errors() {
        assert!(crate::assemble(".text\nbeq $t0, $t1, nowhere\n").is_err());
        assert!(crate::assemble(".text\nx: nop\nx: nop\n").is_err());
        assert!(crate::assemble(".data\nadd $t0, $t0, $t0\n").is_err());
        assert!(crate::assemble(".text\n.word 3\n").is_err());
        assert!(crate::assemble(".text\naddi $t0, $t0, 40000\n").is_err());
        assert!(crate::assemble(".text\n.func f, 1\nnop\n").is_err()); // never closed
        assert!(crate::assemble(".text\n.endfunc\n").is_err());
        assert!(crate::assemble(".text\nsll $t0, $t0, 32\n").is_err());
        assert!(crate::assemble(".text\nli $t0, 0x1_0000_0000\n").is_err());
    }

    #[test]
    fn sizing_matches_encoding_for_forward_refs() {
        // `la` of a forward text symbol must size to 2 in layout and
        // encode to 2 instructions.
        let img = asm(".text\nla $t0, later\nnop\nlater: jr $ra\n");
        assert_eq!(img.text.len(), 4);
        assert_eq!(img.symbols.get("later"), Some(abi::TEXT_BASE + 12));
        let addr = abi::TEXT_BASE + 12;
        assert_eq!(
            instrep_isa::decode(img.text[0]).unwrap(),
            Insn::Lui { rt: Reg::T0, imm: (addr >> 16) as u16 }
        );
        assert_eq!(
            instrep_isa::decode(img.text[1]).unwrap(),
            Insn::imm(ImmOp::Ori, Reg::T0, Reg::T0, (addr & 0xffff) as i16)
        );
    }

    #[test]
    fn loc_markers_build_line_table() {
        let img = asm(".text\n.loc 3\nnop\nli $t0, 0x12345678\n.loc 7\nnop\n");
        // nop(1) + li expanding to lui/ori(2) at line 3, nop(1) at line 7.
        assert_eq!(img.text.len(), 4);
        assert_eq!(img.lines, vec![3, 3, 3, 7]);
        assert_eq!(img.line_at(0), 3);
        assert_eq!(img.line_at(2), 3);
        assert_eq!(img.line_at(3), 7);
        assert_eq!(img.line_at(99), 0);
    }

    #[test]
    fn text_without_loc_has_unknown_lines() {
        let img = asm(".text\nnop\n.loc 5\nnop\nnop\n");
        // Words before the first `.loc` carry line 0 (unknown).
        assert_eq!(img.lines, vec![0, 5, 5]);
        let bare = asm(".text\nnop\nnop\n");
        assert_eq!(bare.lines, vec![0, 0]);
        assert_eq!(bare.line_at(1), 0);
    }

    #[test]
    fn loc_occupies_no_space_and_rejects_bad_lines() {
        let img = asm(".text\na: .loc 2\nb: nop\n");
        // `.loc` between labels must not shift addresses.
        assert_eq!(img.symbols.get("a"), img.symbols.get("b"));
        assert!(crate::assemble(".text\n.loc -3\nnop\n").is_err());
        assert!(crate::assemble(".text\n.loc nope\nnop\n").is_err());
        // `.loc 0` clears line information.
        let cleared = asm(".text\n.loc 9\nnop\n.loc 0\nnop\n");
        assert_eq!(cleared.lines, vec![9, 0]);
    }

    #[test]
    fn parse_then_layout_rejects_dup_data_symbol() {
        let items = parse(".data\na: .word 1\na: .word 2\n").unwrap();
        assert!(layout(items).is_err());
    }
}
