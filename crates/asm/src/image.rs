use std::collections::HashMap;

use instrep_isa::abi;

/// Symbol table mapping label names to absolute addresses.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    map: HashMap<String, u32>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    pub(crate) fn insert(&mut self, name: &str, addr: u32) -> bool {
        self.map.insert(name.to_string(), addr).is_none()
    }

    /// Looks up a symbol's address.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.map.get(name).copied()
    }

    /// Number of symbols defined.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no symbols are defined.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(name, address)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The name of the symbol at exactly `addr`, preferring function
    /// symbols is not attempted; any match is returned.
    pub fn name_at(&self, addr: u32) -> Option<&str> {
        self.map.iter().find(|(_, a)| **a == addr).map(|(n, _)| n.as_str())
    }
}

/// Static metadata for one function, recorded from `.func`/`.endfunc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncMeta {
    /// Function name.
    pub name: String,
    /// Address of the first instruction.
    pub entry: u32,
    /// Address one past the last instruction.
    pub end: u32,
    /// Number of declared parameters.
    pub arity: u8,
}

impl FuncMeta {
    /// Static size of the function in instructions.
    pub fn size_insns(&self) -> u32 {
        (self.end - self.entry) / instrep_isa::INSN_BYTES
    }

    /// Whether `pc` falls inside this function's body.
    pub fn contains(&self, pc: u32) -> bool {
        (self.entry..self.end).contains(&pc)
    }
}

/// An assembled executable: text and data images plus symbol and function
/// metadata.
#[derive(Debug, Clone, Default)]
pub struct Image {
    /// Encoded instruction words, loaded at [`abi::TEXT_BASE`].
    pub text: Vec<u32>,
    /// Source line of each text word, parallel to `text`, recorded from
    /// `.loc` directives (0 = no line information). Every word of a
    /// pseudo-instruction expansion inherits the active `.loc` line.
    pub lines: Vec<u32>,
    /// Data segment bytes, loaded at [`abi::DATA_BASE`]. Includes both
    /// initialized data and `.space` (zero) regions.
    pub data: Vec<u8>,
    /// Absolute address ranges of bytes written by explicit initializers
    /// (`.word`/`.half`/`.byte`/`.ascii*`), merged and sorted. The
    /// analyses treat reads of these as *global init data*; `.space`
    /// bytes are BSS-like and start out uninitialized.
    pub init_ranges: Vec<std::ops::Range<u32>>,
    /// Entry-point address (`__start` if defined).
    pub entry: u32,
    /// Label addresses.
    pub symbols: SymbolTable,
    /// Function metadata from `.func` directives, in source order.
    pub funcs: Vec<FuncMeta>,
}

impl Image {
    /// First address past the data image.
    pub fn data_end(&self) -> u32 {
        abi::DATA_BASE + self.data.len() as u32
    }

    /// First address past the text image.
    pub fn text_end(&self) -> u32 {
        abi::TEXT_BASE + (self.text.len() as u32) * instrep_isa::INSN_BYTES
    }

    /// The function containing `pc`, if any.
    pub fn func_at(&self, pc: u32) -> Option<&FuncMeta> {
        self.funcs.iter().find(|f| f.contains(pc))
    }

    /// Source line of the text word at instruction index `index`
    /// (0 = unknown: no `.loc` covered it, or the image has no line
    /// information at all).
    pub fn line_at(&self, index: usize) -> u32 {
        self.lines.get(index).copied().unwrap_or(0)
    }

    /// Whether the byte at `addr` was written by an explicit data
    /// initializer (versus `.space` / unmapped).
    pub fn is_initialized(&self, addr: u32) -> bool {
        // Ranges are sorted by start and non-overlapping.
        self.init_ranges
            .binary_search_by(|r| {
                if addr < r.start {
                    std::cmp::Ordering::Greater
                } else if addr >= r.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_table_basics() {
        let mut t = SymbolTable::new();
        assert!(t.is_empty());
        assert!(t.insert("a", 4));
        assert!(!t.insert("a", 8)); // duplicate
        assert_eq!(t.get("a"), Some(8));
        assert_eq!(t.get("b"), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.name_at(8), Some("a"));
        assert_eq!(t.name_at(4), None);
    }

    #[test]
    fn func_meta_geometry() {
        let f = FuncMeta { name: "f".into(), entry: 0x40_0010, end: 0x40_0020, arity: 2 };
        assert_eq!(f.size_insns(), 4);
        assert!(f.contains(0x40_0010));
        assert!(f.contains(0x40_001c));
        assert!(!f.contains(0x40_0020));
    }

    #[test]
    fn initialized_ranges() {
        let img = Image { init_ranges: vec![10..20, 30..34], ..Image::default() };
        assert!(!img.is_initialized(9));
        assert!(img.is_initialized(10));
        assert!(img.is_initialized(19));
        assert!(!img.is_initialized(20));
        assert!(img.is_initialized(33));
        assert!(!img.is_initialized(34));
    }

    #[test]
    fn image_bounds() {
        let img = Image { text: vec![0; 3], data: vec![0; 10], ..Image::default() };
        assert_eq!(img.text_end(), abi::TEXT_BASE + 12);
        assert_eq!(img.data_end(), abi::DATA_BASE + 10);
    }
}
