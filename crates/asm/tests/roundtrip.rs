// Property tests are feature-gated: run with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property test: the textual form of any instruction (its `Display`)
//! assembles back to the identical instruction — i.e. disassembly and
//! assembly are inverses over the whole ISA.

use instrep_asm::assemble;
use instrep_isa::{decode, AluOp, BranchOp, ImmOp, Insn, MemOp, MemWidth, Reg, ShiftOp};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::new(n).unwrap())
}

/// Instructions whose `Display` form is valid assembler input.
fn arb_insn() -> impl Strategy<Value = Insn> {
    let alu = (0usize..AluOp::ALL.len(), arb_reg(), arb_reg(), arb_reg())
        .prop_map(|(i, rd, rs, rt)| Insn::alu(AluOp::ALL[i], rd, rs, rt));
    let imm = (0usize..ImmOp::ALL.len(), arb_reg(), arb_reg(), any::<i16>()).prop_map(
        |(i, rt, rs, imm)| {
            let op = ImmOp::ALL[i];
            // Logical immediates print signed but assemble unsigned; keep
            // them non-negative so text round-trips.
            let imm = if op.sign_extends() { imm } else { imm & 0x7fff };
            Insn::imm(op, rt, rs, imm)
        },
    );
    let shift = (0usize..ShiftOp::ALL.len(), arb_reg(), arb_reg(), 0u8..32)
        .prop_map(|(i, rd, rt, shamt)| Insn::Shift { op: ShiftOp::ALL[i], rd, rt, shamt });
    let lui = (arb_reg(), any::<u16>()).prop_map(|(rt, imm)| Insn::Lui { rt, imm });
    let mem = (0usize..MemOp::ALL.len(), arb_reg(), arb_reg(), any::<i16>()).prop_map(
        |(i, rt, base, off)| {
            let op = match MemOp::ALL[i] {
                MemOp::Store(MemWidth::ByteUnsigned) => MemOp::Store(MemWidth::Byte),
                MemOp::Store(MemWidth::HalfUnsigned) => MemOp::Store(MemWidth::Half),
                other => other,
            };
            Insn::Mem { op, rt, base, off }
        },
    );
    let branch = (0usize..BranchOp::ALL.len(), arb_reg(), arb_reg(), any::<i16>()).prop_map(
        |(i, rs, rt, off)| {
            let op = BranchOp::ALL[i];
            let rt = if op.uses_rt() { rt } else { Reg::ZERO };
            Insn::Branch { op, rs, rt, off }
        },
    );
    let jump =
        (any::<bool>(), 0u32..=0x03ff_ffff).prop_map(|(link, target)| Insn::Jump { link, target });
    let jr = arb_reg().prop_map(|rs| Insn::Jr { rs });
    let jalr = (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Insn::Jalr { rd, rs });
    prop_oneof![
        alu,
        imm,
        shift,
        lui,
        mem,
        branch,
        jump,
        jr,
        jalr,
        Just(Insn::Syscall),
        Just(Insn::Break),
    ]
}

proptest! {
    #[test]
    fn display_assembles_back(insns in proptest::collection::vec(arb_insn(), 1..40)) {
        let mut src = String::from(".text\n");
        for insn in &insns {
            src.push_str(&insn.to_string());
            src.push('\n');
        }
        let image = assemble(&src)
            .unwrap_or_else(|e| panic!("assembly of disassembly failed: {e}\n{src}"));
        prop_assert_eq!(image.text.len(), insns.len());
        for (word, want) in image.text.iter().zip(&insns) {
            prop_assert_eq!(decode(*word).expect("assembled word decodes"), *want);
        }
    }
}
