// Property tests are feature-gated: run with `--features proptest`.
#![cfg(feature = "proptest")]

//! Differential property tests: random MiniC expressions compiled and
//! executed on the simulator must agree with a Rust reference evaluator
//! using two's-complement semantics.
//!
//! This exercises the full stack: lexer, parser, sema, codegen (register
//! allocation, spilling, short-circuiting), the assembler, and the
//! simulator's ALU.

use instrep_minicc::build;
use instrep_sim::{Machine, RunOutcome};
use proptest::prelude::*;

/// A total (never-trapping) expression over three variables.
#[derive(Debug, Clone)]
enum Expr {
    Var(usize),
    Const(i32),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    /// Division by a non-zero constant (never traps; avoids the
    /// i32::MIN / -1 overflow trap by excluding -1).
    DivC(Box<Expr>, i32),
    RemC(Box<Expr>, i32),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    ShlC(Box<Expr>, u8),
    ShrC(Box<Expr>, u8),
    Neg(Box<Expr>),
    BitNot(Box<Expr>),
    Not(Box<Expr>),
    Lt(Box<Expr>, Box<Expr>),
    Le(Box<Expr>, Box<Expr>),
    Eq(Box<Expr>, Box<Expr>),
    Ne(Box<Expr>, Box<Expr>),
    LogAnd(Box<Expr>, Box<Expr>),
    LogOr(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn to_c(&self) -> String {
        match self {
            Expr::Var(i) => ["a", "b", "c"][*i].to_string(),
            Expr::Const(v) => {
                if *v < 0 {
                    // MiniC has unary minus but no negative literals wider
                    // than parser support; parenthesize.
                    format!("(0 - {})", i64::from(*v).unsigned_abs())
                } else {
                    v.to_string()
                }
            }
            Expr::Add(l, r) => format!("({} + {})", l.to_c(), r.to_c()),
            Expr::Sub(l, r) => format!("({} - {})", l.to_c(), r.to_c()),
            Expr::Mul(l, r) => format!("({} * {})", l.to_c(), r.to_c()),
            Expr::DivC(l, c) => format!("({} / {c})", l.to_c()),
            Expr::RemC(l, c) => format!("({} % {c})", l.to_c()),
            Expr::And(l, r) => format!("({} & {})", l.to_c(), r.to_c()),
            Expr::Or(l, r) => format!("({} | {})", l.to_c(), r.to_c()),
            Expr::Xor(l, r) => format!("({} ^ {})", l.to_c(), r.to_c()),
            Expr::ShlC(l, k) => format!("({} << {k})", l.to_c()),
            Expr::ShrC(l, k) => format!("({} >> {k})", l.to_c()),
            Expr::Neg(e) => format!("(-{})", e.to_c()),
            Expr::BitNot(e) => format!("(~{})", e.to_c()),
            Expr::Not(e) => format!("(!{})", e.to_c()),
            Expr::Lt(l, r) => format!("({} < {})", l.to_c(), r.to_c()),
            Expr::Le(l, r) => format!("({} <= {})", l.to_c(), r.to_c()),
            Expr::Eq(l, r) => format!("({} == {})", l.to_c(), r.to_c()),
            Expr::Ne(l, r) => format!("({} != {})", l.to_c(), r.to_c()),
            Expr::LogAnd(l, r) => format!("({} && {})", l.to_c(), r.to_c()),
            Expr::LogOr(l, r) => format!("({} || {})", l.to_c(), r.to_c()),
        }
    }

    fn eval(&self, vars: [i32; 3]) -> i32 {
        match self {
            Expr::Var(i) => vars[*i],
            Expr::Const(v) => *v,
            Expr::Add(l, r) => l.eval(vars).wrapping_add(r.eval(vars)),
            Expr::Sub(l, r) => l.eval(vars).wrapping_sub(r.eval(vars)),
            Expr::Mul(l, r) => l.eval(vars).wrapping_mul(r.eval(vars)),
            Expr::DivC(l, c) => l.eval(vars).wrapping_div(*c),
            Expr::RemC(l, c) => l.eval(vars).wrapping_rem(*c),
            Expr::And(l, r) => l.eval(vars) & r.eval(vars),
            Expr::Or(l, r) => l.eval(vars) | r.eval(vars),
            Expr::Xor(l, r) => l.eval(vars) ^ r.eval(vars),
            Expr::ShlC(l, k) => l.eval(vars).wrapping_shl(u32::from(*k)),
            Expr::ShrC(l, k) => l.eval(vars).wrapping_shr(u32::from(*k)),
            Expr::Neg(e) => e.eval(vars).wrapping_neg(),
            Expr::BitNot(e) => !e.eval(vars),
            Expr::Not(e) => i32::from(e.eval(vars) == 0),
            Expr::Lt(l, r) => i32::from(l.eval(vars) < r.eval(vars)),
            Expr::Le(l, r) => i32::from(l.eval(vars) <= r.eval(vars)),
            Expr::Eq(l, r) => i32::from(l.eval(vars) == r.eval(vars)),
            Expr::Ne(l, r) => i32::from(l.eval(vars) != r.eval(vars)),
            Expr::LogAnd(l, r) => i32::from(l.eval(vars) != 0 && r.eval(vars) != 0),
            Expr::LogOr(l, r) => i32::from(l.eval(vars) != 0 || r.eval(vars) != 0),
        }
    }
}

fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(Expr::Var),
        // Mix small and extreme constants.
        prop_oneof![(-64i32..64).prop_map(Expr::Const), any::<i32>().prop_map(Expr::Const),],
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_expr(depth - 1);
    let bin = |f: fn(Box<Expr>, Box<Expr>) -> Expr| {
        (arb_expr(depth - 1), arb_expr(depth - 1))
            .prop_map(move |(l, r)| f(Box::new(l), Box::new(r)))
    };
    prop_oneof![
        leaf,
        bin(Expr::Add),
        bin(Expr::Sub),
        bin(Expr::Mul),
        bin(Expr::And),
        bin(Expr::Or),
        bin(Expr::Xor),
        bin(Expr::Lt),
        bin(Expr::Le),
        bin(Expr::Eq),
        bin(Expr::Ne),
        bin(Expr::LogAnd),
        bin(Expr::LogOr),
        (sub.clone(), prop_oneof![(2i32..100), (-100i32..-2)])
            .prop_map(|(l, c)| Expr::DivC(Box::new(l), c)),
        (arb_expr(depth - 1), prop_oneof![(2i32..100), (-100i32..-2)])
            .prop_map(|(l, c)| Expr::RemC(Box::new(l), c)),
        (arb_expr(depth - 1), 0u8..32).prop_map(|(l, k)| Expr::ShlC(Box::new(l), k)),
        (arb_expr(depth - 1), 0u8..32).prop_map(|(l, k)| Expr::ShrC(Box::new(l), k)),
        arb_expr(depth - 1).prop_map(|e| Expr::Neg(Box::new(e))),
        arb_expr(depth - 1).prop_map(|e| Expr::BitNot(Box::new(e))),
        arb_expr(depth - 1).prop_map(|e| Expr::Not(Box::new(e))),
    ]
    .boxed()
}

/// Compiles a three-variable function around `expr` and runs it.
fn run_expr(expr: &Expr, vars: [i32; 3]) -> i32 {
    let src = format!(
        r#"
        char out[4];
        int f(int a, int b, int c) {{ return {}; }}
        int main() {{
            int v = f({}, {}, {});
            out[0] = v & 255;
            out[1] = (v >> 8) & 255;
            out[2] = (v >> 16) & 255;
            out[3] = (v >> 24) & 255;
            write(out, 4);
            return 0;
        }}
        "#,
        expr.to_c(),
        Expr::Const(vars[0]).to_c(),
        Expr::Const(vars[1]).to_c(),
        Expr::Const(vars[2]).to_c(),
    );
    let image = build(&src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let mut m = Machine::new(&image);
    match m.run(1_000_000, |_| {}) {
        Ok(RunOutcome::Exited(0)) => {}
        other => panic!("bad outcome {other:?} for\n{src}"),
    }
    let out = m.output();
    i32::from_le_bytes(out[0..4].try_into().expect("4 output bytes"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_expressions_match_reference(
        expr in arb_expr(3),
        vars in [any::<i32>(), any::<i32>(), any::<i32>()],
    ) {
        let want = expr.eval(vars);
        let got = run_expr(&expr, vars);
        prop_assert_eq!(got, want, "expr {} with vars {:?}", expr.to_c(), vars);
    }

    #[test]
    fn deep_left_chains_do_not_overflow_eval_stack(
        ks in proptest::collection::vec(-9i32..9, 1..24),
        x in any::<i32>(),
    ) {
        // Left-leaning chains keep eval depth at 2 regardless of length;
        // the compiler must handle them without spilling trouble.
        let mut e = Expr::Var(0);
        let mut want = x;
        for k in &ks {
            e = Expr::Add(Box::new(e), Box::new(Expr::Const(*k)));
            want = want.wrapping_add(*k);
        }
        let got = run_expr(&e, [x, 0, 0]);
        prop_assert_eq!(got, want);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn calls_of_every_arity_pass_arguments_correctly(
        args in proptest::collection::vec(any::<i32>(), 1..=8),
        weights in proptest::collection::vec(1i32..10, 8),
    ) {
        // f(a0..aN) = sum(w_i * a_i): exercises both register (a0..a3)
        // and stack (a4..a7) argument passing.
        let n = args.len();
        let params: Vec<String> = (0..n).map(|i| format!("int a{i}")).collect();
        let body: Vec<String> =
            (0..n).map(|i| format!("a{i} * {}", weights[i])).collect();
        let call_args: Vec<String> =
            args.iter().map(|v| Expr::Const(*v).to_c()).collect();
        let src = format!(
            r#"
            char out[4];
            int f({}) {{ return {}; }}
            int main() {{
                int v = f({});
                out[0] = v & 255;
                out[1] = (v >> 8) & 255;
                out[2] = (v >> 16) & 255;
                out[3] = (v >> 24) & 255;
                write(out, 4);
                return 0;
            }}
            "#,
            params.join(", "),
            body.join(" + "),
            call_args.join(", "),
        );
        let image = build(&src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        let mut m = Machine::new(&image);
        prop_assert_eq!(m.run(1_000_000, |_| {}).unwrap(), RunOutcome::Exited(0));
        let got = i32::from_le_bytes(m.output()[0..4].try_into().unwrap());
        let want = args
            .iter()
            .zip(&weights)
            .fold(0i32, |acc, (a, w)| acc.wrapping_add(a.wrapping_mul(*w)));
        prop_assert_eq!(got, want, "{} args", n);
    }
}
