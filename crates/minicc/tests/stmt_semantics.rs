// Property tests are feature-gated: run with `--features proptest`.
#![cfg(feature = "proptest")]

//! Differential property tests for statements: random programs built
//! from assignments, `if`/`else`, bounded `for` loops, and `while` loops
//! with decreasing counters must compute the same variable state as a
//! reference interpreter.
//!
//! Complements `expr_semantics.rs`: this exercises control-flow codegen
//! (branch synthesis, loop labels, break/continue) and variable homes
//! (callee-saved registers and stack slots).

use instrep_minicc::build;
use instrep_sim::{Machine, RunOutcome};
use proptest::prelude::*;

const NVARS: usize = 6;

#[derive(Debug, Clone)]
enum E {
    Var(usize),
    Const(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
}

impl E {
    fn to_c(&self) -> String {
        match self {
            E::Var(i) => format!("v{i}"),
            E::Const(v) => {
                if *v < 0 {
                    format!("(0 - {})", i64::from(*v).unsigned_abs())
                } else {
                    v.to_string()
                }
            }
            E::Add(l, r) => format!("({} + {})", l.to_c(), r.to_c()),
            E::Sub(l, r) => format!("({} - {})", l.to_c(), r.to_c()),
            E::Mul(l, r) => format!("({} * {})", l.to_c(), r.to_c()),
            E::Xor(l, r) => format!("({} ^ {})", l.to_c(), r.to_c()),
            E::Lt(l, r) => format!("({} < {})", l.to_c(), r.to_c()),
        }
    }

    fn eval(&self, v: &[i32; NVARS]) -> i32 {
        match self {
            E::Var(i) => v[*i],
            E::Const(c) => *c,
            E::Add(l, r) => l.eval(v).wrapping_add(r.eval(v)),
            E::Sub(l, r) => l.eval(v).wrapping_sub(r.eval(v)),
            E::Mul(l, r) => l.eval(v).wrapping_mul(r.eval(v)),
            E::Xor(l, r) => l.eval(v) ^ r.eval(v),
            E::Lt(l, r) => i32::from(l.eval(v) < r.eval(v)),
        }
    }
}

#[derive(Debug, Clone)]
enum S {
    Assign(usize, E),
    If(E, Vec<S>, Vec<S>),
    /// `for (tN = 0; tN < k; tN++) body` over a dedicated loop counter.
    For(u8, Vec<S>),
    Break,
    Continue,
}

fn emit_stmts(stmts: &[S], depth: usize, out: &mut String, loop_id: &mut u32) {
    let pad = "    ".repeat(depth + 1);
    for s in stmts {
        match s {
            S::Assign(i, e) => {
                out.push_str(&format!("{pad}v{i} = {};\n", e.to_c()));
            }
            S::If(c, t, f) => {
                out.push_str(&format!("{pad}if ({}) {{\n", c.to_c()));
                emit_stmts(t, depth + 1, out, loop_id);
                out.push_str(&format!("{pad}}} else {{\n"));
                emit_stmts(f, depth + 1, out, loop_id);
                out.push_str(&format!("{pad}}}\n"));
            }
            S::For(k, body) => {
                let id = *loop_id;
                *loop_id += 1;
                out.push_str(&format!("{pad}int t{id};\n"));
                out.push_str(&format!("{pad}for (t{id} = 0; t{id} < {k}; t{id}++) {{\n"));
                emit_stmts(body, depth + 1, out, loop_id);
                out.push_str(&format!("{pad}}}\n"));
            }
            S::Break => out.push_str(&format!("{pad}break;\n")),
            S::Continue => out.push_str(&format!("{pad}continue;\n")),
        }
    }
}

/// Reference execution. `in_loop` gates break/continue; returns a control
/// signal: 0 = fallthrough, 1 = break, 2 = continue.
fn exec_stmts(stmts: &[S], vars: &mut [i32; NVARS], in_loop: bool) -> u8 {
    for s in stmts {
        match s {
            S::Assign(i, e) => vars[*i] = e.eval(vars),
            S::If(c, t, f) => {
                let branch = if c.eval(vars) != 0 { t } else { f };
                let sig = exec_stmts(branch, vars, in_loop);
                if sig != 0 {
                    return sig;
                }
            }
            S::For(k, body) => {
                'iter: for _ in 0..*k {
                    if exec_stmts(body, vars, true) == 1 {
                        break 'iter;
                    }
                }
            }
            S::Break => {
                if in_loop {
                    return 1;
                }
            }
            S::Continue => {
                if in_loop {
                    return 2;
                }
            }
        }
    }
    0
}

fn arb_e(depth: u32) -> BoxedStrategy<E> {
    let leaf = prop_oneof![(0usize..NVARS).prop_map(E::Var), (-50i32..50).prop_map(E::Const),];
    if depth == 0 {
        return leaf.boxed();
    }
    let bin = |f: fn(Box<E>, Box<E>) -> E| {
        (arb_e(depth - 1), arb_e(depth - 1)).prop_map(move |(l, r)| f(Box::new(l), Box::new(r)))
    };
    prop_oneof![leaf, bin(E::Add), bin(E::Sub), bin(E::Mul), bin(E::Xor), bin(E::Lt)].boxed()
}

fn arb_s(depth: u32, in_loop: bool) -> BoxedStrategy<Vec<S>> {
    let assign = ((0usize..NVARS), arb_e(2)).prop_map(|(i, e)| S::Assign(i, e));
    let mut options = vec![assign.boxed()];
    if in_loop {
        options.push(Just(S::Break).boxed());
        options.push(Just(S::Continue).boxed());
    }
    if depth > 0 {
        let iff = (arb_e(1), arb_s(depth - 1, in_loop), arb_s(depth - 1, in_loop))
            .prop_map(|(c, t, f)| S::If(c, t, f));
        options.push(iff.boxed());
        let forr = ((0u8..6), arb_s(depth - 1, true)).prop_map(|(k, b)| S::For(k, b));
        options.push(forr.boxed());
    }
    proptest::collection::vec(proptest::strategy::Union::new(options), 0..5).boxed()
}

fn run_program(stmts: &[S], init: [i32; NVARS]) -> [i32; NVARS] {
    let mut body = String::new();
    let mut loop_id = 0;
    emit_stmts(stmts, 0, &mut body, &mut loop_id);
    let decls: String =
        (0..NVARS).map(|i| format!("    int v{i} = {};\n", E::Const(init[i]).to_c())).collect();
    let dumps: String = (0..NVARS)
        .map(|i| {
            format!(
                "    out[{o}] = v{i} & 255; out[{o1}] = (v{i} >> 8) & 255; \
                 out[{o2}] = (v{i} >> 16) & 255; out[{o3}] = (v{i} >> 24) & 255;\n",
                o = 4 * i,
                o1 = 4 * i + 1,
                o2 = 4 * i + 2,
                o3 = 4 * i + 3,
            )
        })
        .collect();
    let src = format!(
        "char out[{}];\nint main() {{\n{decls}{body}{dumps}    write(out, {});\n    return 0;\n}}\n",
        NVARS * 4,
        NVARS * 4
    );
    let image = build(&src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let mut m = Machine::new(&image);
    match m.run(10_000_000, |_| {}) {
        Ok(RunOutcome::Exited(0)) => {}
        other => panic!("bad outcome {other:?}\n{src}"),
    }
    let out = m.output();
    let mut vars = [0i32; NVARS];
    for (i, v) in vars.iter_mut().enumerate() {
        *v = i32::from_le_bytes(out[4 * i..4 * i + 4].try_into().unwrap());
    }
    vars
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn compiled_statements_match_reference(
        stmts in arb_s(2, false),
        init in [-100i32..100, -100i32..100, -100i32..100,
                 -100i32..100, -100i32..100, -100i32..100],
    ) {
        let mut want = init;
        exec_stmts(&stmts, &mut want, false);
        let got = run_program(&stmts, init);
        prop_assert_eq!(got, want);
    }
}
