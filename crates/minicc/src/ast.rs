//! Abstract syntax tree for MiniC.
//!
//! The parser builds this tree with unresolved names and `Type::Void`
//! placeholders; semantic analysis (`sema`) resolves identifiers,
//! assigns local slots, and fills in expression types in place.

use crate::types::{StructDef, Type};

/// Binary operators (no assignment; assignment is its own node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variants mirror the C operators directly
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogAnd,
    LogOr,
}

impl BinOp {
    /// Whether this operator yields a 0/1 boolean.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    BitNot,
    /// Logical not (yields 0/1).
    Not,
    /// Pointer dereference.
    Deref,
    /// Address-of.
    Addr,
}

/// Where a resolved identifier lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// Index into the enclosing function's `locals`.
    Local(usize),
    /// A program global (by name).
    Global,
}

/// An expression with its resolved type (filled by sema).
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression form.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: u32,
    /// Resolved type; `Type::Void` until sema runs.
    pub ty: Type,
}

impl Expr {
    /// Creates an expression with a placeholder type.
    pub fn new(kind: ExprKind, line: u32) -> Expr {
        Expr { kind, line, ty: Type::Void }
    }
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings are given in the variant docs
pub enum ExprKind {
    /// Integer literal.
    Num(i64),
    /// String literal; index into [`Program::strings`].
    Str(usize),
    /// Identifier; `storage` is `None` until resolved by sema.
    Ident { name: String, storage: Option<Storage> },
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment, optionally compound (`lhs op= rhs`).
    Assign { op: Option<BinOp>, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Pre/post increment/decrement.
    IncDec { pre: bool, inc: bool, target: Box<Expr> },
    /// Direct call to a named function.
    Call { name: String, args: Vec<Expr> },
    /// Array or pointer indexing.
    Index(Box<Expr>, Box<Expr>),
    /// Struct member access (`.` or, when `arrow`, `->`).
    Member { base: Box<Expr>, field: String, arrow: bool },
    /// `sizeof(type)`; resolved to a constant by sema.
    Sizeof(Type),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings are given in the variant docs
pub enum Stmt {
    /// Local declaration; `local` is the slot index assigned by sema.
    Decl { name: String, ty: Type, init: Option<Expr>, local: usize, line: u32 },
    /// Expression statement.
    Expr(Expr),
    /// `if` with optional `else`.
    If { cond: Expr, then: Box<Stmt>, els: Option<Box<Stmt>> },
    /// `while` loop.
    While { cond: Expr, body: Box<Stmt> },
    /// `for` loop (all three headers optional).
    For { init: Option<Expr>, cond: Option<Expr>, step: Option<Expr>, body: Box<Stmt> },
    /// `return`.
    Return { value: Option<Expr>, line: u32 },
    /// `break`.
    Break { line: u32 },
    /// `continue`.
    Continue { line: u32 },
    /// Braced block with its own scope.
    Block(Vec<Stmt>),
    /// Lone `;`.
    Empty,
}

/// A local variable slot (parameters first, then declarations).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalVar {
    /// Source name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Whether the variable's address is taken (or it is an aggregate),
    /// forcing it onto the stack rather than into a callee-saved register.
    pub addressed: bool,
    /// Whether this slot is a parameter.
    pub is_param: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Number of parameters (the first `arity` entries of `locals`).
    pub arity: usize,
    /// All local slots, parameters first; filled by sema.
    pub locals: Vec<LocalVar>,
    /// Top-level statements of the function body.
    pub body: Vec<Stmt>,
    /// 1-based source line of the definition.
    pub line: u32,
}

/// How a global is initialized.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// No initializer (BSS-like, `.space`).
    None,
    /// Single constant value.
    Scalar(i64),
    /// `{ ... }` list for arrays (padded with zeros; but emitted as
    /// initialized data for the whole object).
    List(Vec<i64>),
    /// String literal initializer for `char` arrays.
    Str(Vec<u8>),
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Source name (also the assembly label).
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Initializer, if any.
    pub init: GlobalInit,
    /// 1-based source line of the definition.
    pub line: u32,
}

/// A complete parsed (and, after sema, analyzed) program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Struct definitions, in declaration order.
    pub structs: Vec<StructDef>,
    /// Global variables, in declaration order.
    pub globals: Vec<Global>,
    /// Function definitions, in declaration order.
    pub funcs: Vec<Func>,
    /// Interned string literals referenced by [`ExprKind::Str`].
    pub strings: Vec<Vec<u8>>,
}

impl Program {
    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<&Func> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Looks up a struct by name.
    pub fn struct_by_name(&self, name: &str) -> Option<(usize, &StructDef)> {
        self.structs.iter().enumerate().find(|(_, s)| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::LogAnd.is_comparison());
    }

    #[test]
    fn program_lookups() {
        let mut p = Program::default();
        p.globals.push(Global {
            name: "g".into(),
            ty: Type::Int,
            init: GlobalInit::Scalar(1),
            line: 1,
        });
        p.funcs.push(Func {
            name: "f".into(),
            ret: Type::Int,
            arity: 0,
            locals: vec![],
            body: vec![],
            line: 2,
        });
        assert!(p.global("g").is_some());
        assert!(p.global("x").is_none());
        assert!(p.func("f").is_some());
        assert!(p.func("g").is_none());
    }
}
