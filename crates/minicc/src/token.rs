use std::fmt;

/// Keywords of the MiniC language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variants are the keywords themselves
pub enum Keyword {
    Int,
    Char,
    Void,
    Struct,
    If,
    Else,
    While,
    For,
    Return,
    Break,
    Continue,
    Sizeof,
}

impl Keyword {
    /// Looks up an identifier as a keyword.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        Some(match s {
            "int" => Keyword::Int,
            "char" => Keyword::Char,
            "void" => Keyword::Void,
            "struct" => Keyword::Struct,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "for" => Keyword::For,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "sizeof" => Keyword::Sizeof,
            _ => return None,
        })
    }

    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Int => "int",
            Keyword::Char => "char",
            Keyword::Void => "void",
            Keyword::Struct => "struct",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::While => "while",
            Keyword::For => "for",
            Keyword::Return => "return",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::Sizeof => "sizeof",
        }
    }
}

/// Multi- and single-character punctuation / operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variants are the tokens themselves; see `as_str`
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Assign,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    PlusPlus,
    MinusMinus,
}

impl Punct {
    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::LBracket => "[",
            Punct::RBracket => "]",
            Punct::Semi => ";",
            Punct::Comma => ",",
            Punct::Dot => ".",
            Punct::Arrow => "->",
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Star => "*",
            Punct::Slash => "/",
            Punct::Percent => "%",
            Punct::Amp => "&",
            Punct::Pipe => "|",
            Punct::Caret => "^",
            Punct::Tilde => "~",
            Punct::Bang => "!",
            Punct::Shl => "<<",
            Punct::Shr => ">>",
            Punct::Lt => "<",
            Punct::Gt => ">",
            Punct::Le => "<=",
            Punct::Ge => ">=",
            Punct::EqEq => "==",
            Punct::Ne => "!=",
            Punct::AndAnd => "&&",
            Punct::OrOr => "||",
            Punct::Assign => "=",
            Punct::PlusEq => "+=",
            Punct::MinusEq => "-=",
            Punct::StarEq => "*=",
            Punct::SlashEq => "/=",
            Punct::PercentEq => "%=",
            Punct::AmpEq => "&=",
            Punct::PipeEq => "|=",
            Punct::CaretEq => "^=",
            Punct::ShlEq => "<<=",
            Punct::ShrEq => ">>=",
            Punct::PlusPlus => "++",
            Punct::MinusMinus => "--",
        }
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier.
    Ident(String),
    /// A reserved keyword.
    Keyword(Keyword),
    /// An integer literal (char literals fold to their byte value).
    Int(i64),
    /// A string literal's bytes (without the trailing NUL).
    Str(Vec<u8>),
    /// Punctuation or an operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{}`", k.as_str()),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Str(_) => f.write_str("string literal"),
            TokenKind::Punct(p) => write!(f, "`{}`", p.as_str()),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(Keyword::from_ident("while"), Some(Keyword::While));
        assert_eq!(Keyword::from_ident("whil"), None);
        for kw in [Keyword::Int, Keyword::Sizeof, Keyword::Continue] {
            assert_eq!(Keyword::from_ident(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn token_display() {
        assert_eq!(TokenKind::Punct(Punct::Arrow).to_string(), "`->`");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier `x`");
    }
}
