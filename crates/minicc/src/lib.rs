#![warn(missing_docs)]
//! MiniC: a small C-like language compiled to SRV32 assembly.
//!
//! MiniC exists so the repetition analyses can run over code with the
//! same *shapes* a classic C compiler produces: stack frames with
//! prologue/epilogue register saves, gp-relative global addressing,
//! register arguments, and spills. The language covers the subset of C
//! the workloads need: `int`/`char`/pointers/arrays/structs, functions
//! (up to 8 parameters), full expression and control-flow syntax, string
//! literals, and global initializers.
//!
//! Builtins `read(buf, len)`, `write(buf, len)`, `sbrk(delta)`, and
//! `exit(code)` map to the simulator's environment; they are linked in as
//! real assembly functions (see [`runtime::RUNTIME_ASM`]).
//!
//! # Examples
//!
//! Compile and run a program end to end:
//!
//! ```
//! use instrep_minicc::build;
//! use instrep_sim::{Machine, RunOutcome};
//!
//! let image = build(r#"
//!     int fib(int n) {
//!         if (n < 2) return n;
//!         return fib(n - 1) + fib(n - 2);
//!     }
//!     int main() { return fib(10); }
//! "#)?;
//! let mut m = Machine::new(&image);
//! assert_eq!(m.run(1_000_000, |_| {})?, RunOutcome::Exited(55));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
mod codegen;
mod error;
mod lexer;
mod parser;
/// Assembly runtime linked into every built program.
pub mod runtime;
mod sema;
/// Lexical tokens of the MiniC language.
pub mod token;
/// The MiniC type system.
pub mod types;

pub use error::{BuildError, CompileError};
pub use sema::{builtin_signatures, Signature};

use instrep_asm::Image;

/// Compiles MiniC source to SRV32 assembly text (program code only; the
/// runtime is appended by [`build`]).
///
/// # Errors
///
/// Returns the first lexical, syntactic, semantic, or code-generation
/// error, with a source line number.
pub fn compile(src: &str) -> Result<String, CompileError> {
    let tokens = lexer::lex(src)?;
    let mut program = parser::parse(tokens)?;
    sema::analyze(&mut program)?;
    codegen::generate(&program)
}

/// Parses and type-checks MiniC source, returning the analyzed AST.
///
/// Useful for tools that want to inspect program structure without
/// generating code.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error.
pub fn check(src: &str) -> Result<ast::Program, CompileError> {
    let tokens = lexer::lex(src)?;
    let mut program = parser::parse(tokens)?;
    sema::analyze(&mut program)?;
    Ok(program)
}

/// Compiles MiniC source and assembles it (with the runtime) into an
/// executable [`Image`]. The program must define `main`.
///
/// # Errors
///
/// Returns [`BuildError::Compile`] for source errors. A
/// [`BuildError::Asm`] indicates a code-generation bug and should be
/// reported.
pub fn build(src: &str) -> Result<Image, BuildError> {
    let asm_text = compile_to_asm(src)?;
    Ok(instrep_asm::assemble(&asm_text)?)
}

/// The compile half of [`build`]: checks the source (including the
/// `main` requirement) and returns the full assembly module, runtime
/// included, ready for [`instrep_asm::assemble`]. Drivers that want to
/// time or trace the compile and assemble stages separately use this;
/// `build(src)` is exactly `assemble(&compile_to_asm(src)?)`.
///
/// # Errors
///
/// Returns [`BuildError::Compile`] for source errors, as [`build`].
pub fn compile_to_asm(src: &str) -> Result<String, BuildError> {
    let program = check(src)?;
    if program.func("main").is_none() {
        return Err(CompileError::new(0, "program has no `main` function").into());
    }
    codegen_text(&program)
}

/// Compiles an analyzed program plus runtime to one assembly module.
fn codegen_text(program: &ast::Program) -> Result<String, BuildError> {
    let mut text = codegen::generate(program)?;
    // The runtime is hand-written assembly with no MiniC source lines:
    // clear the active `.loc` so its instructions stay unattributed.
    text.push_str("    .loc 0\n");
    text.push_str(runtime::RUNTIME_ASM);
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use instrep_sim::{Machine, RunOutcome};

    /// Compiles, runs, and returns the exit code.
    fn run(src: &str) -> u32 {
        run_io(src, b"").0
    }

    /// Compiles, runs with input, returns (exit code, output bytes).
    fn run_io(src: &str, input: &[u8]) -> (u32, Vec<u8>) {
        let image = build(src).unwrap_or_else(|e| panic!("build failed: {e}\n{src}"));
        let mut m = Machine::new(&image);
        m.set_input(input.to_vec());
        match m.run(200_000_000, |_| {}) {
            Ok(RunOutcome::Exited(code)) => (code, m.output().to_vec()),
            Ok(RunOutcome::MaxedOut) => panic!("program did not terminate"),
            Err(e) => panic!("trap: {e} (pc={:#x})", m.pc()),
        }
    }

    #[test]
    fn return_constant() {
        assert_eq!(run("int main() { return 42; }"), 42);
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run("int main() { return 2 + 3 * 4; }"), 14);
        assert_eq!(run("int main() { return (2 + 3) * 4; }"), 20);
        assert_eq!(run("int main() { return 100 / 7; }"), 14);
        assert_eq!(run("int main() { return 100 % 7; }"), 2);
        assert_eq!(run("int main() { return 1 << 10; }"), 1024);
        assert_eq!(run("int main() { return 1024 >> 3; }"), 128);
        assert_eq!(run("int main() { return (0 - 8) >> 1; }") as i32, -4);
        assert_eq!(run("int main() { return 0xF0 | 0x0F; }"), 255);
        assert_eq!(run("int main() { return 0xFF & 0x3C; }"), 0x3c);
        assert_eq!(run("int main() { return 0xFF ^ 0x0F; }"), 0xf0);
        assert_eq!(run("int main() { return ~0 & 0xFF; }"), 255);
        assert_eq!(run("int main() { return -(-5); }"), 5);
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run("int main() { return 3 < 4; }"), 1);
        assert_eq!(run("int main() { return 4 < 3; }"), 0);
        assert_eq!(run("int main() { return 3 <= 3; }"), 1);
        assert_eq!(run("int main() { return 3 >= 4; }"), 0);
        assert_eq!(run("int main() { return 3 == 3; }"), 1);
        assert_eq!(run("int main() { return 3 != 3; }"), 0);
        assert_eq!(run("int main() { return (0-1) < 0; }"), 1); // signed compare
        assert_eq!(run("int main() { return 1 && 2; }"), 1);
        assert_eq!(run("int main() { return 1 && 0; }"), 0);
        assert_eq!(run("int main() { return 0 || 3; }"), 1);
        assert_eq!(run("int main() { return !5; }"), 0);
        assert_eq!(run("int main() { return !0; }"), 1);
    }

    #[test]
    fn short_circuit_side_effects() {
        // Division by zero on the unevaluated side must not trap.
        assert_eq!(run("int main() { int x = 0; return x != 0 && 10 / x > 0; }"), 0);
        assert_eq!(run("int main() { int x = 1; return x == 1 || 10 / 0 > 0; }"), 1);
    }

    #[test]
    fn locals_and_control_flow() {
        assert_eq!(
            run(r#"
                int main() {
                    int s = 0;
                    int i;
                    for (i = 1; i <= 10; i++) s += i;
                    return s;
                }
            "#),
            55
        );
        assert_eq!(
            run(r#"
                int main() {
                    int n = 0;
                    while (1) { n++; if (n == 7) break; }
                    return n;
                }
            "#),
            7
        );
        assert_eq!(
            run(r#"
                int main() {
                    int s = 0;
                    int i;
                    for (i = 0; i < 10; i++) { if (i % 2) continue; s += i; }
                    return s;
                }
            "#),
            20
        );
    }

    #[test]
    fn functions_and_recursion() {
        assert_eq!(
            run(r#"
                int gcd(int a, int b) { if (b == 0) return a; return gcd(b, a % b); }
                int main() { return gcd(48, 36); }
            "#),
            12
        );
        assert_eq!(
            run(r#"
                int ack(int m, int n) {
                    if (m == 0) return n + 1;
                    if (n == 0) return ack(m - 1, 1);
                    return ack(m - 1, ack(m, n - 1));
                }
                int main() { return ack(2, 3); }
            "#),
            9
        );
    }

    #[test]
    fn many_arguments() {
        assert_eq!(
            run(r#"
                int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
                    return a + b + c + d + e + f + g + h;
                }
                int main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }
            "#),
            36
        );
    }

    #[test]
    fn globals() {
        assert_eq!(
            run(r#"
                int counter = 10;
                int tab[5] = {2, 4, 6, 8, 10};
                int bump(int d) { counter += d; return counter; }
                int main() { bump(5); return counter + tab[3]; }
            "#),
            23
        );
    }

    #[test]
    fn arrays_and_pointers() {
        assert_eq!(
            run(r#"
                int main() {
                    int a[8];
                    int i;
                    int* p = a;
                    for (i = 0; i < 8; i++) a[i] = i * i;
                    return p[3] + *(a + 5) + (&a[7] - a);
                }
            "#),
            9 + 25 + 7
        );
    }

    #[test]
    fn char_semantics() {
        assert_eq!(run("int main() { char c = 250; c += 10; return c; }"), 4); // wraps
        assert_eq!(
            run(r#"
                char s[6] = "hello";
                int main() { return s[0] + s[4]; }
            "#),
            (b'h' + b'o') as u32
        );
        assert_eq!(
            run(r#"
                int len(char* s) { int n = 0; while (s[n]) n++; return n; }
                int main() { return len("minic"); }
            "#),
            5
        );
    }

    #[test]
    fn structs() {
        assert_eq!(
            run(r#"
                struct point { int x; int y; };
                struct rect { struct point a; struct point b; };
                struct rect r;
                int area(struct rect* p) {
                    return (p->b.x - p->a.x) * (p->b.y - p->a.y);
                }
                int main() {
                    r.a.x = 1; r.a.y = 2; r.b.x = 5; r.b.y = 6;
                    return area(&r);
                }
            "#),
            16
        );
    }

    #[test]
    fn linked_list_on_heap() {
        assert_eq!(
            run(r#"
                struct node { int v; struct node* next; };
                int main() {
                    struct node* head = 0;
                    int i;
                    for (i = 1; i <= 5; i++) {
                        struct node* n = sbrk(sizeof(struct node));
                        n->v = i;
                        n->next = head;
                        head = n;
                    }
                    int s = 0;
                    while (head) { s += head->v; head = head->next; }
                    return s;
                }
            "#),
            15
        );
    }

    #[test]
    fn io_roundtrip() {
        let (code, out) = run_io(
            r#"
            char buf[32];
            int main() {
                int n = read(buf, 32);
                int i;
                for (i = 0; i < n; i++) {
                    if (buf[i] >= 'a' && buf[i] <= 'z') buf[i] -= 32;
                }
                write(buf, n);
                return n;
            }
            "#,
            b"Hello, World!",
        );
        assert_eq!(code, 13);
        assert_eq!(out, b"HELLO, WORLD!");
    }

    #[test]
    fn inc_dec_value_semantics() {
        assert_eq!(run("int main() { int i = 5; int j = i++; return j * 10 + i; }"), 56);
        assert_eq!(run("int main() { int i = 5; int j = ++i; return j * 10 + i; }"), 66);
        assert_eq!(run("int main() { int a[3]; a[1] = 7; int* p = a; p++; return *p; }"), 7);
        assert_eq!(
            run("int main() { int a[3]; int i = 0; a[0]=1; a[1]=2; a[2]=4; return a[i++] + a[i++] + a[i]; }"),
            7
        );
    }

    #[test]
    fn compound_assignment() {
        assert_eq!(run("int main() { int x = 10; x <<= 2; x |= 1; x -= 3; return x; }"), 38);
        assert_eq!(
            run(r#"
                int g = 100;
                int main() { g /= 3; g %= 10; return g; }
            "#),
            3
        );
        assert_eq!(run("int main() { int a[2]; a[0] = 3; a[0] *= 7; return a[0]; }"), 21);
    }

    #[test]
    fn spills_beyond_sregs() {
        // More than 8 scalar locals forces stack homes.
        assert_eq!(
            run(r#"
                int main() {
                    int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
                    int f = 6; int g = 7; int h = 8; int i = 9; int j = 10;
                    int k = 11; int l = 12;
                    return a + b + c + d + e + f + g + h + i + j + k + l;
                }
            "#),
            78
        );
    }

    #[test]
    fn nested_calls_do_not_clobber_args() {
        assert_eq!(
            run(r#"
                int add(int a, int b) { return a + b; }
                int main() { return add(add(1, 2), add(add(3, 4), 5)); }
            "#),
            15
        );
    }

    #[test]
    fn global_char_scalar() {
        assert_eq!(
            run(r#"
                char flag = 'x';
                int main() { flag = flag + 1; return flag; }
            "#),
            u32::from(b'y')
        );
    }

    #[test]
    fn build_errors_surface() {
        assert!(matches!(build("int f() { return 0; }"), Err(BuildError::Compile(_)))); // no main
        assert!(matches!(compile_to_asm("int f() { return 0; }"), Err(BuildError::Compile(_))));
        assert!(build("int main() { return undefined_fn(); }").is_err());
    }

    #[test]
    fn build_is_compile_to_asm_plus_assemble() {
        let src = "int sq(int x) { return x * x; } int main() { return sq(6); }";
        let asm = compile_to_asm(src).unwrap();
        assert!(asm.contains("sq:"));
        let split = instrep_asm::assemble(&asm).unwrap();
        let joined = build(src).unwrap();
        assert_eq!(split.text, joined.text);
        assert_eq!(split.data, joined.data);
    }

    #[test]
    fn codegen_emits_loc_markers_for_line_provenance() {
        let src = "int add(int a, int b) {\n    return a + b;\n}\nint main() {\n    int x = add(2, 3);\n    return x;\n}\n";
        let asm = compile_to_asm(src).unwrap();
        // One marker per distinct statement line, deduplicated.
        assert!(asm.contains(".loc 1\n"), "missing function-line marker:\n{asm}");
        assert!(asm.contains(".loc 2\n"));
        assert!(asm.contains(".loc 5\n"));
        assert!(asm.contains(".loc 6\n"));
        let image = build(src).unwrap();
        assert_eq!(image.lines.len(), image.text.len());
        let text_base = instrep_isa::abi::TEXT_BASE;
        // Every instruction of user functions carries its source line.
        for f in image.funcs.iter().filter(|f| f.name == "add" || f.name == "main") {
            let start = ((f.entry - text_base) / 4) as usize;
            for i in start..start + f.size_insns() as usize {
                assert_ne!(image.line_at(i), 0, "{} word {i} has no line", f.name);
            }
        }
        // The runtime (no `.loc` markers) stays line 0.
        let start_fn = image.funcs.iter().find(|f| f.name == "__start").unwrap();
        let idx = ((start_fn.entry - text_base) / 4) as usize;
        assert_eq!(image.line_at(idx), 0);
    }

    #[test]
    fn compile_produces_func_metadata() {
        let image =
            build("int helper(int x) { return x; } int main() { return helper(3); }").unwrap();
        let names: Vec<&str> = image.funcs.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"main"));
        assert!(names.contains(&"helper"));
        assert!(names.contains(&"__start"));
        assert!(names.contains(&"read"));
        let helper = image.funcs.iter().find(|f| f.name == "helper").unwrap();
        assert_eq!(helper.arity, 1);
        assert!(helper.size_insns() > 0);
    }

    #[test]
    fn address_of_scalar_local() {
        assert_eq!(
            run(r#"
                void bump(int* p) { *p += 1; }
                int main() { int x = 41; bump(&x); return x; }
            "#),
            42
        );
    }

    #[test]
    fn sizeof_values() {
        assert_eq!(run("int main() { return sizeof(int); }"), 4);
        assert_eq!(run("int main() { return sizeof(char); }"), 1);
        assert_eq!(run("int main() { return sizeof(int*); }"), 4);
        assert_eq!(run("int main() { return sizeof(int[10]); }"), 40);
        assert_eq!(run("struct p { int a; char b; }; int main() { return sizeof(struct p); }"), 8);
    }
}

#[cfg(test)]
mod limit_tests {
    use super::*;

    #[test]
    fn oversized_frame_fails_cleanly() {
        // A local array beyond the signed-16-bit frame-offset range must
        // surface as a build error, not a panic or miscompile.
        let r = build("int main() { int a[20000]; a[0] = 1; return a[0]; }");
        assert!(matches!(r, Err(BuildError::Asm(_))), "got {r:?}");
    }

    #[test]
    fn deep_expression_reports_source_line() {
        // 11+ live values exceed the 10-register evaluation stack.
        let mut expr = String::from("1");
        for _ in 0..12 {
            expr = format!("(1 + {expr} * 2)");
        }
        let src = format!("int main() {{ return {expr}; }}");
        let err = match build(&src) {
            Err(BuildError::Compile(e)) => e,
            other => panic!("expected compile error, got {other:?}"),
        };
        assert!(err.message().contains("too complex"), "{err}");
    }

    #[test]
    fn gp_window_overflow_uses_absolute_addressing() {
        // Globals beyond the 64 KiB gp window must still be reachable.
        let src = r#"
            int big[20000];
            int tail = 7;
            int main() {
                big[19999] = 35;
                return big[19999] + tail;
            }
        "#;
        let image = build(src).unwrap();
        let mut m = instrep_sim::Machine::new(&image);
        let out = m.run(1_000_000, |_| {}).unwrap();
        assert_eq!(out, instrep_sim::RunOutcome::Exited(42));
    }
}
