use std::fmt;

/// Error produced while compiling a MiniC program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    line: u32,
    message: String,
}

impl CompileError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> CompileError {
        CompileError { line, message: message.into() }
    }

    /// 1-based source line of the error (0 when global).
    pub fn line(&self) -> u32 {
        self.line
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "compile error: {}", self.message)
        } else {
            write!(f, "compile error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for CompileError {}

/// Error from [`crate::build`]: either compilation or assembly failed.
#[derive(Debug)]
pub enum BuildError {
    /// MiniC compilation failed.
    Compile(CompileError),
    /// Assembling the generated code failed (a compiler bug).
    Asm(instrep_asm::AsmError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Compile(e) => e.fmt(f),
            BuildError::Asm(e) => write!(f, "internal: generated assembly rejected: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Compile(e) => Some(e),
            BuildError::Asm(e) => Some(e),
        }
    }
}

impl From<CompileError> for BuildError {
    fn from(e: CompileError) -> BuildError {
        BuildError::Compile(e)
    }
}

impl From<instrep_asm::AsmError> for BuildError {
    fn from(e: instrep_asm::AsmError) -> BuildError {
        BuildError::Asm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CompileError::new(3, "expected `;`");
        assert_eq!(e.to_string(), "compile error at line 3: expected `;`");
        let b: BuildError = e.into();
        assert!(b.to_string().contains("expected `;`"));
    }
}
