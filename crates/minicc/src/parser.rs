use crate::ast::*;
use crate::error::CompileError;
use crate::token::{Keyword, Punct, Token, TokenKind};
use crate::types::{StructDef, StructId, Type};

/// Whether `ty` embeds the struct with id `sid` by value (directly or
/// through arrays), which would make its size infinite.
fn contains_struct_by_value(ty: &Type, sid: usize) -> bool {
    match ty {
        Type::Struct(id) => id.0 == sid,
        Type::Array(elem, _) => contains_struct_by_value(elem, sid),
        _ => false,
    }
}

/// Parses a token stream into a [`Program`].
///
/// Struct definitions must precede their first use; functions and
/// globals may appear in any order relative to their uses (name
/// resolution happens in sema).
pub fn parse(tokens: Vec<Token>) -> Result<Program, CompileError> {
    Parser { tokens, pos: 0, program: Program::default() }.parse_program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    program: Program,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.line(), msg)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if *self.peek() == TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), CompileError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`, found {}", p.as_str(), self.peek())))
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if *self.peek() == TokenKind::Keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(CompileError::new(
                self.tokens[self.pos.saturating_sub(1)].line,
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn expect_int(&mut self) -> Result<i64, CompileError> {
        match self.bump() {
            TokenKind::Int(v) => Ok(v),
            other => Err(CompileError::new(
                self.tokens[self.pos.saturating_sub(1)].line,
                format!("expected integer, found {other}"),
            )),
        }
    }

    // -----------------------------------------------------------------
    // Types
    // -----------------------------------------------------------------

    /// Whether the current token begins a type.
    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Keyword(Keyword::Int | Keyword::Char | Keyword::Void | Keyword::Struct)
        )
    }

    /// Parses a base type plus any `*` suffixes.
    fn parse_type(&mut self) -> Result<Type, CompileError> {
        let base = match self.bump() {
            TokenKind::Keyword(Keyword::Int) => Type::Int,
            TokenKind::Keyword(Keyword::Char) => Type::Char,
            TokenKind::Keyword(Keyword::Void) => Type::Void,
            TokenKind::Keyword(Keyword::Struct) => {
                let name = self.expect_ident()?;
                let (id, _) = self
                    .program
                    .struct_by_name(&name)
                    .ok_or_else(|| self.err(format!("unknown struct `{name}`")))?;
                Type::Struct(StructId(id))
            }
            other => {
                return Err(CompileError::new(
                    self.tokens[self.pos.saturating_sub(1)].line,
                    format!("expected type, found {other}"),
                ))
            }
        };
        let mut ty = base;
        while self.eat_punct(Punct::Star) {
            ty = ty.ptr_to();
        }
        Ok(ty)
    }

    /// Parses optional `[N]` array suffixes onto `ty`.
    fn parse_array_suffix(&mut self, mut ty: Type) -> Result<Type, CompileError> {
        let mut dims = Vec::new();
        while self.eat_punct(Punct::LBracket) {
            let n = self.expect_int()?;
            if !(1..=(1 << 24)).contains(&n) {
                return Err(self.err(format!("array size {n} out of range")));
            }
            self.expect_punct(Punct::RBracket)?;
            dims.push(n as u32);
        }
        for &n in dims.iter().rev() {
            ty = Type::Array(Box::new(ty), n);
        }
        Ok(ty)
    }

    // -----------------------------------------------------------------
    // Top level
    // -----------------------------------------------------------------

    fn parse_program(mut self) -> Result<Program, CompileError> {
        while *self.peek() != TokenKind::Eof {
            // `struct Name { ... };` definition vs `struct Name ...` use.
            if *self.peek() == TokenKind::Keyword(Keyword::Struct)
                && matches!(self.peek2(), TokenKind::Ident(_))
                && self.tokens.get(self.pos + 2).map(|t| &t.kind)
                    == Some(&TokenKind::Punct(Punct::LBrace))
            {
                self.parse_struct_def()?;
                continue;
            }
            self.parse_global_or_func()?;
        }
        Ok(self.program)
    }

    fn parse_struct_def(&mut self) -> Result<(), CompileError> {
        let line = self.line();
        self.bump(); // struct
        let name = self.expect_ident()?;
        if self.program.struct_by_name(&name).is_some() {
            return Err(CompileError::new(line, format!("duplicate struct `{name}`")));
        }
        // Register a placeholder so fields can refer to the struct through
        // pointers (`struct node* next`). Self-reference by value is
        // rejected below.
        let self_id = self.program.structs.len();
        self.program.structs.push(StructDef {
            name: name.clone(),
            fields: Vec::new(),
            size: 0,
            align: 1,
        });
        self.expect_punct(Punct::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            let ty = self.parse_type()?;
            let fname = self.expect_ident()?;
            let ty = self.parse_array_suffix(ty)?;
            if ty == Type::Void {
                return Err(self.err("struct field cannot be void"));
            }
            if contains_struct_by_value(&ty, self_id) {
                return Err(self.err(format!("struct `{name}` cannot contain itself by value")));
            }
            if fields.iter().any(|(n, _)| *n == fname) {
                return Err(self.err(format!("duplicate field `{fname}`")));
            }
            fields.push((fname, ty));
            self.expect_punct(Punct::Semi)?;
        }
        self.expect_punct(Punct::Semi)?;
        let def = StructDef::layout(name, fields, &self.program.structs);
        self.program.structs[self_id] = def;
        Ok(())
    }

    fn parse_global_or_func(&mut self) -> Result<(), CompileError> {
        let line = self.line();
        let ty = self.parse_type()?;
        let name = self.expect_ident()?;
        if *self.peek() == TokenKind::Punct(Punct::LParen) {
            return self.parse_func(ty, name, line);
        }
        // Global variable(s); `int a = 1, b;` style lists allowed.
        let gty = self.parse_array_suffix(ty.clone())?;
        if gty == Type::Void {
            return Err(self.err("global cannot be void"));
        }
        let init = if self.eat_punct(Punct::Assign) {
            self.parse_global_init(&gty)?
        } else {
            GlobalInit::None
        };
        self.program.globals.push(Global { name, ty: gty, init, line });
        if self.eat_punct(Punct::Comma) {
            let next = self.expect_ident()?;
            return self.parse_global_rest(ty, next, line);
        }
        self.expect_punct(Punct::Semi)?;
        Ok(())
    }

    /// Continues a comma-separated global declarator list.
    fn parse_global_rest(
        &mut self,
        base: Type,
        mut name: String,
        line: u32,
    ) -> Result<(), CompileError> {
        loop {
            let gty = self.parse_array_suffix(base.clone())?;
            let init = if self.eat_punct(Punct::Assign) {
                self.parse_global_init(&gty)?
            } else {
                GlobalInit::None
            };
            self.program.globals.push(Global { name, ty: gty, init, line });
            if self.eat_punct(Punct::Comma) {
                name = self.expect_ident()?;
            } else {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(())
    }

    fn parse_global_init(&mut self, ty: &Type) -> Result<GlobalInit, CompileError> {
        match self.peek().clone() {
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                let mut vals = Vec::new();
                if !self.eat_punct(Punct::RBrace) {
                    loop {
                        vals.push(self.parse_const_expr()?);
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                        // Trailing comma allowed.
                        if *self.peek() == TokenKind::Punct(Punct::RBrace) {
                            break;
                        }
                    }
                    self.expect_punct(Punct::RBrace)?;
                }
                if !matches!(ty, Type::Array(..)) {
                    return Err(self.err("brace initializer requires an array type"));
                }
                Ok(GlobalInit::List(vals))
            }
            TokenKind::Str(_) => {
                let TokenKind::Str(bytes) = self.bump() else { unreachable!() };
                if !matches!(ty, Type::Array(elem, _) if **elem == Type::Char) {
                    return Err(self.err("string initializer requires a char array"));
                }
                let mut b = bytes;
                b.push(0);
                Ok(GlobalInit::Str(b))
            }
            _ => Ok(GlobalInit::Scalar(self.parse_const_expr()?)),
        }
    }

    /// Constant expressions in global initializers: integers, unary minus,
    /// and char literals (already folded by the lexer).
    fn parse_const_expr(&mut self) -> Result<i64, CompileError> {
        let neg = self.eat_punct(Punct::Minus);
        let v = self.expect_int()?;
        Ok(if neg { -v } else { v })
    }

    fn parse_func(&mut self, ret: Type, name: String, line: u32) -> Result<(), CompileError> {
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            if self.eat_keyword(Keyword::Void) && *self.peek() == TokenKind::Punct(Punct::RParen) {
                // `f(void)` empty parameter list.
                self.bump();
            } else {
                loop {
                    let pty = self.parse_type()?;
                    let pname = self.expect_ident()?;
                    // Array parameters decay to pointers.
                    let pty = self.parse_array_suffix(pty)?.decayed();
                    if !pty.is_scalar() {
                        return Err(self.err(format!("parameter `{pname}` must be scalar")));
                    }
                    params.push((pname, pty));
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.expect_punct(Punct::RParen)?;
            }
        }
        if params.len() > 8 {
            return Err(CompileError::new(line, format!("too many parameters ({})", params.len())));
        }
        if self.program.func(&name).is_some() {
            return Err(CompileError::new(line, format!("duplicate function `{name}`")));
        }
        self.expect_punct(Punct::LBrace)?;
        let body = self.parse_block_stmts()?;
        let arity = params.len();
        let locals = params
            .into_iter()
            .map(|(pname, pty)| LocalVar { name: pname, ty: pty, addressed: false, is_param: true })
            .collect();
        self.program.funcs.push(Func { name, ret, arity, locals, body, line });
        Ok(())
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    /// Parses statements until the closing `}` (which is consumed).
    fn parse_block_stmts(&mut self) -> Result<Vec<Stmt>, CompileError> {
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if *self.peek() == TokenKind::Eof {
                return Err(self.err("unexpected end of input inside block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                Ok(Stmt::Block(self.parse_block_stmts()?))
            }
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt::Empty)
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let then = Box::new(self.parse_stmt()?);
                let els = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.parse_stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If { cond, then, els })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(Stmt::While { cond, body: Box::new(self.parse_stmt()?) })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let cond = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if *self.peek() == TokenKind::Punct(Punct::RParen) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                Ok(Stmt::For { init, cond, step, body: Box::new(self.parse_stmt()?) })
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Return { value, line })
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Break { line })
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Continue { line })
            }
            _ if self.at_type() => {
                let ty = self.parse_type()?;
                let name = self.expect_ident()?;
                let ty = self.parse_array_suffix(ty)?;
                if ty == Type::Void {
                    return Err(self.err("local cannot be void"));
                }
                let init =
                    if self.eat_punct(Punct::Assign) { Some(self.parse_expr()?) } else { None };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Decl { name, ty, init, local: usize::MAX, line })
            }
            _ => {
                let e = self.parse_expr()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    // -----------------------------------------------------------------
    // Expressions
    // -----------------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, CompileError> {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let lhs = self.parse_binary(0)?;
        let op = match self.peek() {
            TokenKind::Punct(Punct::Assign) => Some(None),
            TokenKind::Punct(Punct::PlusEq) => Some(Some(BinOp::Add)),
            TokenKind::Punct(Punct::MinusEq) => Some(Some(BinOp::Sub)),
            TokenKind::Punct(Punct::StarEq) => Some(Some(BinOp::Mul)),
            TokenKind::Punct(Punct::SlashEq) => Some(Some(BinOp::Div)),
            TokenKind::Punct(Punct::PercentEq) => Some(Some(BinOp::Rem)),
            TokenKind::Punct(Punct::AmpEq) => Some(Some(BinOp::And)),
            TokenKind::Punct(Punct::PipeEq) => Some(Some(BinOp::Or)),
            TokenKind::Punct(Punct::CaretEq) => Some(Some(BinOp::Xor)),
            TokenKind::Punct(Punct::ShlEq) => Some(Some(BinOp::Shl)),
            TokenKind::Punct(Punct::ShrEq) => Some(Some(BinOp::Shr)),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_assign()?; // right-associative
            return Ok(Expr::new(
                ExprKind::Assign { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                line,
            ));
        }
        Ok(lhs)
    }

    /// Precedence-climbing binary expression parser.
    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::Punct(Punct::OrOr) => (BinOp::LogOr, 1),
                TokenKind::Punct(Punct::AndAnd) => (BinOp::LogAnd, 2),
                TokenKind::Punct(Punct::Pipe) => (BinOp::Or, 3),
                TokenKind::Punct(Punct::Caret) => (BinOp::Xor, 4),
                TokenKind::Punct(Punct::Amp) => (BinOp::And, 5),
                TokenKind::Punct(Punct::EqEq) => (BinOp::Eq, 6),
                TokenKind::Punct(Punct::Ne) => (BinOp::Ne, 6),
                TokenKind::Punct(Punct::Lt) => (BinOp::Lt, 7),
                TokenKind::Punct(Punct::Le) => (BinOp::Le, 7),
                TokenKind::Punct(Punct::Gt) => (BinOp::Gt, 7),
                TokenKind::Punct(Punct::Ge) => (BinOp::Ge, 7),
                TokenKind::Punct(Punct::Shl) => (BinOp::Shl, 8),
                TokenKind::Punct(Punct::Shr) => (BinOp::Shr, 8),
                TokenKind::Punct(Punct::Plus) => (BinOp::Add, 9),
                TokenKind::Punct(Punct::Minus) => (BinOp::Sub, 9),
                TokenKind::Punct(Punct::Star) => (BinOp::Mul, 10),
                TokenKind::Punct(Punct::Slash) => (BinOp::Div, 10),
                TokenKind::Punct(Punct::Percent) => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), line);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let op = match self.peek() {
            TokenKind::Punct(Punct::Minus) => Some(UnOp::Neg),
            TokenKind::Punct(Punct::Tilde) => Some(UnOp::BitNot),
            TokenKind::Punct(Punct::Bang) => Some(UnOp::Not),
            TokenKind::Punct(Punct::Star) => Some(UnOp::Deref),
            TokenKind::Punct(Punct::Amp) => Some(UnOp::Addr),
            TokenKind::Punct(Punct::PlusPlus) => {
                self.bump();
                let target = self.parse_unary()?;
                return Ok(Expr::new(
                    ExprKind::IncDec { pre: true, inc: true, target: Box::new(target) },
                    line,
                ));
            }
            TokenKind::Punct(Punct::MinusMinus) => {
                self.bump();
                let target = self.parse_unary()?;
                return Ok(Expr::new(
                    ExprKind::IncDec { pre: true, inc: false, target: Box::new(target) },
                    line,
                ));
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.parse_unary()?;
            return Ok(Expr::new(ExprKind::Unary(op, Box::new(operand)), line));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.parse_primary()?;
        loop {
            let line = self.line();
            match self.peek() {
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), line);
                }
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let field = self.expect_ident()?;
                    e = Expr::new(
                        ExprKind::Member { base: Box::new(e), field, arrow: false },
                        line,
                    );
                }
                TokenKind::Punct(Punct::Arrow) => {
                    self.bump();
                    let field = self.expect_ident()?;
                    e = Expr::new(ExprKind::Member { base: Box::new(e), field, arrow: true }, line);
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    self.bump();
                    e = Expr::new(
                        ExprKind::IncDec { pre: false, inc: true, target: Box::new(e) },
                        line,
                    );
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    self.bump();
                    e = Expr::new(
                        ExprKind::IncDec { pre: false, inc: false, target: Box::new(e) },
                        line,
                    );
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::new(ExprKind::Num(v), line)),
            TokenKind::Str(bytes) => {
                let mut b = bytes;
                b.push(0);
                let idx = self.program.strings.len();
                self.program.strings.push(b);
                Ok(Expr::new(ExprKind::Str(idx), line))
            }
            TokenKind::Keyword(Keyword::Sizeof) => {
                self.expect_punct(Punct::LParen)?;
                let ty = self.parse_type()?;
                let ty = self.parse_array_suffix(ty)?;
                self.expect_punct(Punct::RParen)?;
                Ok(Expr::new(ExprKind::Sizeof(ty), line))
            }
            TokenKind::Ident(name) => {
                if *self.peek() == TokenKind::Punct(Punct::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                        self.expect_punct(Punct::RParen)?;
                    }
                    Ok(Expr::new(ExprKind::Call { name, args }, line))
                } else {
                    Ok(Expr::new(ExprKind::Ident { name, storage: None }, line))
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                let e = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(CompileError::new(line, format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Program, CompileError> {
        parse(lex(src)?)
    }

    #[test]
    fn minimal_program() {
        let p = parse_src("int main() { return 0; }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        assert_eq!(p.funcs[0].arity, 0);
        assert!(matches!(p.funcs[0].body[0], Stmt::Return { .. }));
    }

    #[test]
    fn globals_with_inits() {
        let p = parse_src(
            r#"
            int a = 5;
            int b;
            int tab[4] = {1, 2, 3, 4};
            char msg[6] = "hello";
            int x = -3, y = 7;
            "#,
        )
        .unwrap();
        assert_eq!(p.globals.len(), 6);
        assert_eq!(p.globals[0].init, GlobalInit::Scalar(5));
        assert_eq!(p.globals[1].init, GlobalInit::None);
        assert_eq!(p.globals[2].init, GlobalInit::List(vec![1, 2, 3, 4]));
        assert_eq!(p.globals[3].init, GlobalInit::Str(b"hello\0".to_vec()));
        assert_eq!(p.globals[4].init, GlobalInit::Scalar(-3));
        assert_eq!(p.globals[5].init, GlobalInit::Scalar(7));
    }

    #[test]
    fn struct_definitions() {
        let p = parse_src(
            r#"
            struct point { int x; int y; };
            struct node { int val; struct node* next; };
            struct point origin;
            "#,
        )
        .unwrap();
        assert_eq!(p.structs.len(), 2);
        assert_eq!(p.structs[0].size, 8);
        assert_eq!(p.structs[1].size, 8);
        assert!(matches!(p.globals[0].ty, Type::Struct(_)));
    }

    #[test]
    fn precedence() {
        let p = parse_src("int f() { return 1 + 2 * 3 == 7 && 4 < 5; }").unwrap();
        let Stmt::Return { value: Some(e), .. } = &p.funcs[0].body[0] else { panic!() };
        // Top node must be &&.
        let ExprKind::Binary(BinOp::LogAnd, lhs, _) = &e.kind else {
            panic!("expected &&, got {:?}", e.kind)
        };
        let ExprKind::Binary(BinOp::Eq, add, _) = &lhs.kind else { panic!() };
        let ExprKind::Binary(BinOp::Add, _, mul) = &add.kind else { panic!() };
        assert!(matches!(mul.kind, ExprKind::Binary(BinOp::Mul, ..)));
    }

    #[test]
    fn postfix_chains() {
        let p = parse_src("int f(int* p) { return p[1] + p[2]; }").unwrap();
        assert_eq!(p.funcs[0].arity, 1);
        let p2 = parse_src("struct s { int v; }; int f(struct s* q) { return q->v; }").unwrap();
        let Stmt::Return { value: Some(e), .. } = &p2.funcs[0].body[0] else { panic!() };
        assert!(matches!(&e.kind, ExprKind::Member { arrow: true, .. }));
    }

    #[test]
    fn inc_dec_forms() {
        let p = parse_src("int f(int x) { ++x; x--; return x++; }").unwrap();
        let body = &p.funcs[0].body;
        assert!(matches!(
            &body[0],
            Stmt::Expr(Expr { kind: ExprKind::IncDec { pre: true, inc: true, .. }, .. })
        ));
        assert!(matches!(
            &body[1],
            Stmt::Expr(Expr { kind: ExprKind::IncDec { pre: false, inc: false, .. }, .. })
        ));
    }

    #[test]
    fn control_flow() {
        let p = parse_src(
            r#"
            int f(int n) {
                int s = 0;
                for (; n > 0; n = n - 1) {
                    if (n % 2 == 0) continue;
                    s += n;
                }
                while (s > 100) { s = s / 2; break; }
                return s;
            }
            "#,
        )
        .unwrap();
        assert!(matches!(p.funcs[0].body[1], Stmt::For { .. }));
        assert!(matches!(p.funcs[0].body[2], Stmt::While { .. }));
    }

    #[test]
    fn sizeof_and_arrays() {
        let p = parse_src("int f() { int a[10]; return sizeof(int) + sizeof(int[4]); }").unwrap();
        let Stmt::Decl { ty, .. } = &p.funcs[0].body[0] else { panic!() };
        assert_eq!(*ty, Type::Array(Box::new(Type::Int), 10));
    }

    #[test]
    fn error_cases() {
        assert!(parse_src("int main() { return 0 }").is_err()); // missing ;
        assert!(parse_src("int f(struct nope x) {}").is_err()); // unknown struct
        assert!(parse_src("struct s { int x; }; struct s { int y; };").is_err());
        assert!(parse_src("int f() { 1 +; }").is_err());
        assert!(parse_src("void x;").is_err());
        assert!(parse_src("int f() {").is_err()); // unterminated block
        assert!(parse_src(
            "int f(int a, int b, int c, int d, int e, int g, int h, int i, int j) { return 0; }"
        )
        .is_err());
        assert!(parse_src("int t[0];").is_err());
        assert!(parse_src("int g = {1};").is_err()); // brace init on scalar
        assert!(parse_src("int f() { return x(1,; }").is_err());
    }

    #[test]
    fn void_param_list() {
        let p = parse_src("int f(void) { return 1; }").unwrap();
        assert_eq!(p.funcs[0].arity, 0);
    }

    #[test]
    fn string_interning() {
        let p = parse_src(r#"int f(char* s) { return f("a") + f("b"); }"#).unwrap();
        assert_eq!(p.strings.len(), 2);
        assert_eq!(p.strings[0], b"a\0");
    }
}
