//! Assembly runtime linked into every MiniC program.
//!
//! Provides the program entry point (`__start`, which calls `main` and
//! exits with its return value) and the four builtins as real functions
//! with `.func` metadata, so the repetition analyses observe them as
//! ordinary calls.

/// Assembly text appended after the generated program code.
pub const RUNTIME_ASM: &str = r#"
.text
.func __start, 0
__start:
    jal  main
    move $a0, $v0
    li   $v0, 0
    syscall
.endfunc

# exit(code) - never returns.
.func exit, 1
exit:
    li   $v0, 0
    syscall
.endfunc

# read(buf, len) -> bytes read, from the external input stream (fd 0).
.func read, 2
read:
    move $a2, $a1
    move $a1, $a0
    li   $a0, 0
    li   $v0, 1
    syscall
    jr   $ra
.endfunc

# write(buf, len) -> len, to the captured output stream (fd 1).
.func write, 2
write:
    move $a2, $a1
    move $a1, $a0
    li   $a0, 1
    li   $v0, 2
    syscall
    jr   $ra
.endfunc

# sbrk(delta) -> previous break.
.func sbrk, 1
sbrk:
    li   $v0, 3
    syscall
    jr   $ra
.endfunc
"#;
