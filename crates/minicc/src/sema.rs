//! Semantic analysis: name resolution, local-slot assignment, and type
//! checking. Runs in place over the parsed [`Program`].

use std::collections::HashMap;

use crate::ast::*;
use crate::error::CompileError;
use crate::types::{StructDef, Type};

fn err(line: u32, msg: impl Into<String>) -> CompileError {
    CompileError::new(line, msg)
}

/// A callable signature (user function or builtin).
#[derive(Debug, Clone)]
pub struct Signature {
    /// Return type.
    pub ret: Type,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Whether this is a runtime builtin (`read`/`write`/`sbrk`/`exit`).
    pub builtin: bool,
}

/// The four runtime builtins every MiniC program can call.
///
/// They are implemented as real assembly functions in
/// [`crate::runtime::RUNTIME_ASM`], so calls to them look like ordinary
/// function calls to the analyses.
pub fn builtin_signatures() -> HashMap<String, Signature> {
    let mut m = HashMap::new();
    m.insert(
        "read".to_string(),
        Signature { ret: Type::Int, params: vec![Type::Char.ptr_to(), Type::Int], builtin: true },
    );
    m.insert(
        "write".to_string(),
        Signature { ret: Type::Int, params: vec![Type::Char.ptr_to(), Type::Int], builtin: true },
    );
    m.insert(
        "sbrk".to_string(),
        Signature { ret: Type::Char.ptr_to(), params: vec![Type::Int], builtin: true },
    );
    m.insert(
        "exit".to_string(),
        Signature { ret: Type::Void, params: vec![Type::Int], builtin: true },
    );
    m
}

/// Runs semantic analysis over `program`.
///
/// # Errors
///
/// Returns the first semantic error: unresolved or duplicate names, type
/// mismatches, bad lvalues, arity mismatches, `break` outside a loop, and
/// so on.
pub fn analyze(program: &mut Program) -> Result<(), CompileError> {
    // Duplicate-global detection (functions were checked by the parser).
    let mut seen = HashMap::new();
    for g in &program.globals {
        if seen.insert(g.name.clone(), ()).is_some() {
            return Err(err(g.line, format!("duplicate global `{}`", g.name)));
        }
        if matches!(g.ty, Type::Array(..)) {
            if let GlobalInit::List(vals) = &g.init {
                let n = match &g.ty {
                    Type::Array(_, n) => *n as usize,
                    _ => unreachable!(),
                };
                if vals.len() > n {
                    return Err(err(g.line, format!("too many initializers for `{}`", g.name)));
                }
            }
            if let GlobalInit::Str(bytes) = &g.init {
                let Type::Array(_, n) = &g.ty else { unreachable!() };
                if bytes.len() > *n as usize {
                    return Err(err(
                        g.line,
                        format!("string initializer too long for `{}`", g.name),
                    ));
                }
            }
        }
    }

    let mut signatures = builtin_signatures();
    for f in &program.funcs {
        if signatures.contains_key(&f.name) {
            return Err(err(f.line, format!("`{}` shadows a builtin or function", f.name)));
        }
        if seen.contains_key(&f.name) {
            return Err(err(f.line, format!("`{}` is already a global variable", f.name)));
        }
        signatures.insert(
            f.name.clone(),
            Signature {
                ret: f.ret.clone(),
                params: f.locals[..f.arity].iter().map(|l| l.ty.clone()).collect(),
                builtin: false,
            },
        );
    }

    let globals: HashMap<String, Type> =
        program.globals.iter().map(|g| (g.name.clone(), g.ty.clone())).collect();

    let mut funcs = std::mem::take(&mut program.funcs);
    for f in &mut funcs {
        let mut ck = Checker {
            structs: &program.structs,
            strings_len: program.strings.len(),
            globals: &globals,
            signatures: &signatures,
            func_ret: f.ret.clone(),
            locals: std::mem::take(&mut f.locals),
            scopes: Vec::new(),
            loop_depth: 0,
        };
        ck.push_scope();
        for (i, l) in ck.locals.iter().enumerate() {
            let name = l.name.clone();
            if ck.scopes[0].insert(name, i).is_some() {
                return Err(err(f.line, format!("duplicate parameter in `{}`", f.name)));
            }
        }
        let mut body = std::mem::take(&mut f.body);
        for s in &mut body {
            ck.stmt(s)?;
        }
        f.body = body;
        f.locals = ck.locals;
    }
    program.funcs = funcs;
    Ok(())
}

struct Checker<'a> {
    structs: &'a [StructDef],
    strings_len: usize,
    globals: &'a HashMap<String, Type>,
    signatures: &'a HashMap<String, Signature>,
    func_ret: Type,
    locals: Vec<LocalVar>,
    scopes: Vec<HashMap<String, usize>>,
    loop_depth: u32,
}

impl Checker<'_> {
    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn lookup(&self, name: &str) -> Option<Storage> {
        for scope in self.scopes.iter().rev() {
            if let Some(&i) = scope.get(name) {
                return Some(Storage::Local(i));
            }
        }
        if self.globals.contains_key(name) {
            return Some(Storage::Global);
        }
        None
    }

    fn stmt(&mut self, s: &mut Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Decl { name, ty, init, local, line } => {
                if !ty.is_scalar() && !matches!(ty, Type::Array(..) | Type::Struct(_)) {
                    return Err(err(*line, format!("bad local type for `{name}`")));
                }
                if let Some(e) = init {
                    if !ty.is_scalar() {
                        return Err(err(*line, "aggregate locals cannot have initializers"));
                    }
                    self.expr(e)?;
                    if !ty.accepts(&e.ty) {
                        return Err(err(
                            *line,
                            format!("cannot initialize `{name}: {ty}` from `{}`", e.ty),
                        ));
                    }
                }
                let idx = self.locals.len();
                self.locals.push(LocalVar {
                    name: name.clone(),
                    ty: ty.clone(),
                    addressed: !ty.is_scalar(),
                    is_param: false,
                });
                let scope = self.scopes.last_mut().expect("scope stack never empty");
                if scope.insert(name.clone(), idx).is_some() {
                    return Err(err(*line, format!("duplicate local `{name}` in scope")));
                }
                *local = idx;
                Ok(())
            }
            Stmt::Expr(e) => self.expr(e).map(|_| ()),
            Stmt::If { cond, then, els } => {
                self.scalar_expr(cond)?;
                self.stmt(then)?;
                if let Some(e) = els {
                    self.stmt(e)?;
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                self.scalar_expr(cond)?;
                self.loop_depth += 1;
                self.stmt(body)?;
                self.loop_depth -= 1;
                Ok(())
            }
            Stmt::For { init, cond, step, body } => {
                if let Some(e) = init {
                    self.expr(e)?;
                }
                if let Some(e) = cond {
                    self.scalar_expr(e)?;
                }
                if let Some(e) = step {
                    self.expr(e)?;
                }
                self.loop_depth += 1;
                self.stmt(body)?;
                self.loop_depth -= 1;
                Ok(())
            }
            Stmt::Return { value, line } => match (value, &self.func_ret) {
                (None, Type::Void) => Ok(()),
                (None, ret) => {
                    Err(err(*line, format!("missing return value (function returns {ret})")))
                }
                (Some(_), Type::Void) => Err(err(*line, "void function cannot return a value")),
                (Some(e), _) => {
                    self.expr(e)?;
                    let ret = self.func_ret.clone();
                    if !ret.accepts(&e.ty) {
                        return Err(err(
                            *line,
                            format!("cannot return `{}` from function returning `{ret}`", e.ty),
                        ));
                    }
                    Ok(())
                }
            },
            Stmt::Break { line } => {
                if self.loop_depth == 0 {
                    return Err(err(*line, "`break` outside a loop"));
                }
                Ok(())
            }
            Stmt::Continue { line } => {
                if self.loop_depth == 0 {
                    return Err(err(*line, "`continue` outside a loop"));
                }
                Ok(())
            }
            Stmt::Block(stmts) => {
                self.push_scope();
                for s in stmts {
                    self.stmt(s)?;
                }
                self.pop_scope();
                Ok(())
            }
            Stmt::Empty => Ok(()),
        }
    }

    /// Checks an expression used as a condition or arithmetic operand.
    fn scalar_expr(&mut self, e: &mut Expr) -> Result<(), CompileError> {
        self.expr(e)?;
        if !e.ty.decayed().is_scalar() {
            return Err(err(e.line, format!("expected scalar value, found `{}`", e.ty)));
        }
        Ok(())
    }

    /// Whether `e` denotes a memory location.
    fn is_lvalue(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Ident { .. } | ExprKind::Index(..) => true,
            ExprKind::Unary(UnOp::Deref, _) => true,
            ExprKind::Member { base, arrow, .. } => *arrow || self.is_lvalue(base),
            _ => false,
        }
    }

    /// Marks the base local of an lvalue as address-taken.
    fn mark_addressed(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Ident { storage: Some(Storage::Local(i)), .. } => {
                self.locals[*i].addressed = true;
            }
            ExprKind::Member { base, arrow: false, .. } => self.mark_addressed(base),
            _ => {}
        }
    }

    fn expr(&mut self, e: &mut Expr) -> Result<(), CompileError> {
        let line = e.line;
        let ty = match &mut e.kind {
            ExprKind::Num(_) => Type::Int,
            ExprKind::Str(idx) => {
                debug_assert!(*idx < self.strings_len);
                Type::Char.ptr_to()
            }
            ExprKind::Sizeof(ty) => {
                if ty.size(self.structs) == 0 {
                    return Err(err(line, "sizeof(void) is not allowed"));
                }
                Type::Int
            }
            ExprKind::Ident { name, storage } => {
                let st = self
                    .lookup(name)
                    .ok_or_else(|| err(line, format!("undefined identifier `{name}`")))?;
                *storage = Some(st);
                match st {
                    Storage::Local(i) => self.locals[i].ty.clone(),
                    Storage::Global => self.globals[name.as_str()].clone(),
                }
            }
            ExprKind::Unary(op, operand) => {
                let op = *op;
                self.expr(operand)?;
                match op {
                    UnOp::Neg | UnOp::BitNot | UnOp::Not => {
                        if !operand.ty.decayed().is_scalar() {
                            return Err(err(line, format!("bad operand type `{}`", operand.ty)));
                        }
                        Type::Int
                    }
                    UnOp::Deref => {
                        let decayed = operand.ty.decayed();
                        match decayed.deref() {
                            Some(Type::Void) | None => {
                                return Err(err(
                                    line,
                                    format!("cannot dereference `{}`", operand.ty),
                                ))
                            }
                            Some(t) => t.clone(),
                        }
                    }
                    UnOp::Addr => {
                        if !self.is_lvalue(operand) {
                            return Err(err(line, "cannot take the address of this expression"));
                        }
                        let inner = operand.ty.clone();
                        self.mark_addressed(operand);
                        inner.ptr_to()
                    }
                }
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let op = *op;
                self.expr(lhs)?;
                self.expr(rhs)?;
                let lt = lhs.ty.decayed();
                let rt = rhs.ty.decayed();
                if !lt.is_scalar() || !rt.is_scalar() {
                    return Err(err(
                        line,
                        format!("bad operand types `{}` and `{}`", lhs.ty, rhs.ty),
                    ));
                }
                match op {
                    BinOp::Add => match (&lt, &rt) {
                        (Type::Ptr(_), Type::Ptr(_)) => {
                            return Err(err(line, "cannot add two pointers"))
                        }
                        (Type::Ptr(_), _) => lt.clone(),
                        (_, Type::Ptr(_)) => rt.clone(),
                        _ => Type::Int,
                    },
                    BinOp::Sub => match (&lt, &rt) {
                        (Type::Ptr(a), Type::Ptr(b)) => {
                            if a != b {
                                return Err(err(line, "pointer subtraction type mismatch"));
                            }
                            Type::Int
                        }
                        (Type::Ptr(_), _) => lt.clone(),
                        (_, Type::Ptr(_)) => {
                            return Err(err(line, "cannot subtract pointer from integer"))
                        }
                        _ => Type::Int,
                    },
                    _ => Type::Int,
                }
            }
            ExprKind::Assign { op: _, lhs, rhs } => {
                self.expr(lhs)?;
                self.expr(rhs)?;
                if !self.is_lvalue(lhs) {
                    return Err(err(line, "left side of assignment is not an lvalue"));
                }
                if !lhs.ty.is_scalar() {
                    return Err(err(line, format!("cannot assign to `{}`", lhs.ty)));
                }
                if !lhs.ty.accepts(&rhs.ty) {
                    return Err(err(line, format!("cannot assign `{}` to `{}`", rhs.ty, lhs.ty)));
                }
                lhs.ty.clone()
            }
            ExprKind::IncDec { target, .. } => {
                self.expr(target)?;
                if !self.is_lvalue(target) || !target.ty.is_scalar() {
                    return Err(err(line, "++/-- target must be a scalar lvalue"));
                }
                target.ty.clone()
            }
            ExprKind::Call { name, args } => {
                let sig = self
                    .signatures
                    .get(name.as_str())
                    .ok_or_else(|| err(line, format!("call to undefined function `{name}`")))?
                    .clone();
                if args.len() != sig.params.len() {
                    return Err(err(
                        line,
                        format!(
                            "`{name}` expects {} argument(s), got {}",
                            sig.params.len(),
                            args.len()
                        ),
                    ));
                }
                for (arg, want) in args.iter_mut().zip(&sig.params) {
                    self.expr(arg)?;
                    if !want.accepts(&arg.ty) {
                        return Err(err(
                            arg.line,
                            format!("argument type `{}` does not match `{want}`", arg.ty),
                        ));
                    }
                }
                sig.ret
            }
            ExprKind::Index(base, idx) => {
                self.expr(base)?;
                self.expr(idx)?;
                if !matches!(idx.ty.decayed(), Type::Int | Type::Char) {
                    return Err(err(line, format!("index must be integer, found `{}`", idx.ty)));
                }
                let decayed = base.ty.decayed();
                match decayed.deref() {
                    Some(Type::Void) | None => {
                        return Err(err(line, format!("cannot index `{}`", base.ty)))
                    }
                    Some(t) => t.clone(),
                }
            }
            ExprKind::Member { base, field, arrow } => {
                let arrow = *arrow;
                self.expr(base)?;
                let sid = if arrow {
                    match base.ty.decayed() {
                        Type::Ptr(inner) => match *inner {
                            Type::Struct(id) => id,
                            _ => return Err(err(line, format!("`->` on `{}`", base.ty))),
                        },
                        _ => return Err(err(line, format!("`->` on `{}`", base.ty))),
                    }
                } else {
                    match &base.ty {
                        Type::Struct(id) => *id,
                        _ => return Err(err(line, format!("`.` on `{}`", base.ty))),
                    }
                };
                let sdef = &self.structs[sid.0];
                let f = sdef.field(field).ok_or_else(|| {
                    err(line, format!("no field `{field}` in struct `{}`", sdef.name))
                })?;
                f.ty.clone()
            }
        };
        e.ty = ty;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check(src: &str) -> Result<Program, CompileError> {
        let mut p = parse(lex(src)?)?;
        analyze(&mut p)?;
        Ok(p)
    }

    #[test]
    fn resolves_locals_params_globals() {
        let p = check(
            r#"
            int g = 3;
            int f(int a) {
                int b = a + g;
                { int c = b; b = c; }
                return b;
            }
            "#,
        )
        .unwrap();
        let f = p.func("f").unwrap();
        assert_eq!(f.locals.len(), 3); // a, b, c
        assert!(f.locals[0].is_param);
        assert_eq!(f.locals[1].name, "b");
    }

    #[test]
    fn types_flow() {
        let p = check(
            r#"
            struct node { int v; struct node* next; };
            struct node pool[10];
            int f(struct node* n) { return n->next->v + pool[1].v; }
            "#,
        )
        .unwrap();
        let f = p.func("f").unwrap();
        let Stmt::Return { value: Some(e), .. } = &f.body[0] else { panic!() };
        assert_eq!(e.ty, Type::Int);
    }

    #[test]
    fn pointer_arithmetic_types() {
        let p = check("int f(int* p, int n) { return *(p + n) + (p - p); }").unwrap();
        assert_eq!(p.func("f").unwrap().ret, Type::Int);
        assert!(check("int f(int* p, char* q) { return p - q; }").is_err());
        assert!(check("int f(int* p, int* q) { return p + q; }").is_err());
        assert!(check("int f(int* p, int n) { return n - p; }").is_err());
    }

    #[test]
    fn addressed_locals_flagged() {
        let p = check("int g(int* p) { return *p; } int f() { int x = 1; return g(&x); }").unwrap();
        let f = p.func("f").unwrap();
        assert!(f.locals[0].addressed);
        // Arrays are always addressed.
        let p2 = check("int f() { int a[4]; a[0] = 1; return a[0]; }").unwrap();
        assert!(p2.func("f").unwrap().locals[0].addressed);
        // Plain scalars are not.
        let p3 = check("int f() { int x = 1; return x; }").unwrap();
        assert!(!p3.func("f").unwrap().locals[0].addressed);
    }

    #[test]
    fn builtins_typed() {
        check(
            r#"
            char buf[64];
            int main() {
                int n = read(buf, 64);
                write(buf, n);
                char* p = sbrk(4096);
                exit(0);
                return 0;
            }
            "#,
        )
        .unwrap();
        assert!(check("int read(char* b, int n) { return 0; }").is_err()); // shadows builtin
        assert!(check("int main() { return read(1, 2, 3); }").is_err()); // arity
    }

    #[test]
    fn error_cases() {
        assert!(check("int f() { return x; }").is_err());
        assert!(check("int f() { 3 = 4; return 0; }").is_err());
        assert!(check("int f() { break; return 0; }").is_err());
        assert!(check("int f() { continue; return 0; }").is_err());
        assert!(check("void f() { return 3; }").is_err());
        assert!(check("int f() { return; }").is_err());
        assert!(check("int f() { return nosuch(); }").is_err());
        assert!(check("struct s { int v; }; int f(struct s* p) { return p->w; }").is_err());
        assert!(check("int f(int x) { return x.v; }").is_err());
        assert!(check("int f(int x) { return *x; }").is_err());
        assert!(check("int f(int x) { return &3; }").is_err());
        assert!(check("int g = 1; int g = 2;").is_err());
        assert!(check("int f() { int a; int a; return 0; }").is_err());
        assert!(check("int t[2] = {1,2,3};").is_err());
        assert!(check("char s[2] = \"abc\";").is_err());
        assert!(check("struct s {int v;}; int f() { struct s a; struct s b; a = b; return 0; }")
            .is_err());
    }

    #[test]
    fn shadowing_in_inner_scope_ok() {
        check("int f(int x) { { int x; x = 2; } return x; }").unwrap();
    }

    #[test]
    fn sizeof_is_int() {
        let p = check("int f() { return sizeof(int[3]); }").unwrap();
        let Stmt::Return { value: Some(e), .. } = &p.func("f").unwrap().body[0] else { panic!() };
        assert_eq!(e.ty, Type::Int);
        assert!(check("int f() { return sizeof(void); }").is_err());
    }
}
