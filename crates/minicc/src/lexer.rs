use crate::error::CompileError;
use crate::token::{Keyword, Punct, Token, TokenKind};

fn err(line: u32, msg: impl Into<String>) -> CompileError {
    CompileError::new(line, msg)
}

/// Tokenizes MiniC source text.
///
/// Supports `//` and `/* */` comments, decimal / hex / char / string
/// literals with C escapes, and the operator set of [`Punct`].
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($kind:expr) => {
            tokens.push(Token { kind: $kind, line })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(start_line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                match Keyword::from_ident(word) {
                    Some(kw) => push!(TokenKind::Keyword(kw)),
                    None => push!(TokenKind::Ident(word.to_string())),
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let radix = if c == '0' && matches!(bytes.get(i + 1), Some(b'x' | b'X')) {
                    i += 2;
                    16
                } else {
                    10
                };
                let digits_start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_alphanumeric() {
                    i += 1;
                }
                let digits = if radix == 16 { &src[digits_start..i] } else { &src[start..i] };
                let v = i64::from_str_radix(digits, radix)
                    .map_err(|_| err(line, format!("bad integer literal `{}`", &src[start..i])))?;
                push!(TokenKind::Int(v));
            }
            '\'' => {
                let (v, next) = lex_char(bytes, i, line)?;
                push!(TokenKind::Int(i64::from(v)));
                i = next;
            }
            '"' => {
                let (s, next, newlines) = lex_string(bytes, i, line)?;
                push!(TokenKind::Str(s));
                i = next;
                line += newlines;
            }
            _ => {
                let (p, len) = lex_punct(bytes, i)
                    .ok_or_else(|| err(line, format!("unexpected character `{c}`")))?;
                push!(TokenKind::Punct(p));
                i += len;
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, line });
    Ok(tokens)
}

fn escape(b: u8, line: u32) -> Result<u8, CompileError> {
    Ok(match b {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        other => return Err(err(line, format!("unknown escape `\\{}`", other as char))),
    })
}

fn lex_char(bytes: &[u8], start: usize, line: u32) -> Result<(u8, usize), CompileError> {
    let mut i = start + 1;
    let v = match bytes.get(i) {
        Some(b'\\') => {
            i += 1;
            let e = *bytes.get(i).ok_or_else(|| err(line, "unterminated char literal"))?;
            i += 1;
            escape(e, line)?
        }
        Some(&b) if b != b'\'' && b != b'\n' => {
            i += 1;
            b
        }
        _ => return Err(err(line, "bad char literal")),
    };
    if bytes.get(i) != Some(&b'\'') {
        return Err(err(line, "unterminated char literal"));
    }
    Ok((v, i + 1))
}

fn lex_string(
    bytes: &[u8],
    start: usize,
    line: u32,
) -> Result<(Vec<u8>, usize, u32), CompileError> {
    let mut out = Vec::new();
    let mut i = start + 1;
    let mut newlines = 0;
    loop {
        match bytes.get(i) {
            None => return Err(err(line, "unterminated string literal")),
            Some(b'"') => return Ok((out, i + 1, newlines)),
            Some(b'\\') => {
                let e = *bytes.get(i + 1).ok_or_else(|| err(line, "unterminated string"))?;
                out.push(escape(e, line)?);
                i += 2;
            }
            Some(&b) => {
                if b == b'\n' {
                    newlines += 1;
                }
                out.push(b);
                i += 1;
            }
        }
    }
}

fn lex_punct(bytes: &[u8], i: usize) -> Option<(Punct, usize)> {
    let b1 = bytes[i];
    let b2 = bytes.get(i + 1).copied().unwrap_or(0);
    let b3 = bytes.get(i + 2).copied().unwrap_or(0);
    // Three-character operators first.
    match (b1, b2, b3) {
        (b'<', b'<', b'=') => return Some((Punct::ShlEq, 3)),
        (b'>', b'>', b'=') => return Some((Punct::ShrEq, 3)),
        _ => {}
    }
    let two = match (b1, b2) {
        (b'-', b'>') => Some(Punct::Arrow),
        (b'<', b'<') => Some(Punct::Shl),
        (b'>', b'>') => Some(Punct::Shr),
        (b'<', b'=') => Some(Punct::Le),
        (b'>', b'=') => Some(Punct::Ge),
        (b'=', b'=') => Some(Punct::EqEq),
        (b'!', b'=') => Some(Punct::Ne),
        (b'&', b'&') => Some(Punct::AndAnd),
        (b'|', b'|') => Some(Punct::OrOr),
        (b'+', b'=') => Some(Punct::PlusEq),
        (b'-', b'=') => Some(Punct::MinusEq),
        (b'*', b'=') => Some(Punct::StarEq),
        (b'/', b'=') => Some(Punct::SlashEq),
        (b'%', b'=') => Some(Punct::PercentEq),
        (b'&', b'=') => Some(Punct::AmpEq),
        (b'|', b'=') => Some(Punct::PipeEq),
        (b'^', b'=') => Some(Punct::CaretEq),
        (b'+', b'+') => Some(Punct::PlusPlus),
        (b'-', b'-') => Some(Punct::MinusMinus),
        _ => None,
    };
    if let Some(p) = two {
        return Some((p, 2));
    }
    let one = match b1 {
        b'(' => Punct::LParen,
        b')' => Punct::RParen,
        b'{' => Punct::LBrace,
        b'}' => Punct::RBrace,
        b'[' => Punct::LBracket,
        b']' => Punct::RBracket,
        b';' => Punct::Semi,
        b',' => Punct::Comma,
        b'.' => Punct::Dot,
        b'+' => Punct::Plus,
        b'-' => Punct::Minus,
        b'*' => Punct::Star,
        b'/' => Punct::Slash,
        b'%' => Punct::Percent,
        b'&' => Punct::Amp,
        b'|' => Punct::Pipe,
        b'^' => Punct::Caret,
        b'~' => Punct::Tilde,
        b'!' => Punct::Bang,
        b'<' => Punct::Lt,
        b'>' => Punct::Gt,
        b'=' => Punct::Assign,
        _ => return None,
    };
    Some((one, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_keywords_ints() {
        assert_eq!(
            kinds("int x1 = 0x1F;"),
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Ident("x1".into()),
                TokenKind::Punct(Punct::Assign),
                TokenKind::Int(31),
                TokenKind::Punct(Punct::Semi),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            kinds("a <<= b >> c->d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct(Punct::ShlEq),
                TokenKind::Ident("b".into()),
                TokenKind::Punct(Punct::Shr),
                TokenKind::Ident("c".into()),
                TokenKind::Punct(Punct::Arrow),
                TokenKind::Ident("d".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn char_and_string_literals() {
        assert_eq!(
            kinds(r#"'a' '\n' "hi\t""#),
            vec![
                TokenKind::Int(97),
                TokenKind::Int(10),
                TokenKind::Str(vec![b'h', b'i', b'\t']),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = lex("x // comment\n/* multi\nline */ y").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
        assert!(matches!(toks[1].kind, TokenKind::Ident(ref s) if s == "y"));
    }

    #[test]
    fn errors() {
        assert!(lex("'ab'").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("`").is_err());
        assert!(lex("'\\q'").is_err());
        assert!(lex("0xZZ").is_err());
    }

    #[test]
    fn error_line_numbers() {
        let e = lex("ok\nok\n`").unwrap_err();
        assert_eq!(e.line(), 3);
    }
}
