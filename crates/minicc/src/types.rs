use std::fmt;

/// Identifier of a struct definition within a [`crate::ast::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StructId(pub usize);

/// A MiniC type.
///
/// MiniC is deliberately weakly typed in the C tradition: pointers and
/// `int` interconvert implicitly (there is no cast syntax), `char`
/// promotes to `int` in arithmetic, and arrays decay to pointers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// Function-return "no value" type.
    Void,
    /// 32-bit signed integer.
    Int,
    /// 8-bit unsigned byte.
    Char,
    /// Pointer to another type.
    Ptr(Box<Type>),
    /// Fixed-size array.
    Array(Box<Type>, u32),
    /// A named struct (by id).
    Struct(StructId),
}

impl Type {
    /// Pointer-to-self convenience.
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Size in bytes. Structs are looked up in `structs`.
    pub fn size(&self, structs: &[StructDef]) -> u32 {
        match self {
            Type::Void => 0,
            Type::Int | Type::Ptr(_) => 4,
            Type::Char => 1,
            Type::Array(elem, n) => elem.size(structs) * n,
            Type::Struct(id) => structs[id.0].size,
        }
    }

    /// Alignment in bytes.
    pub fn align(&self, structs: &[StructDef]) -> u32 {
        match self {
            Type::Void => 1,
            Type::Int | Type::Ptr(_) => 4,
            Type::Char => 1,
            Type::Array(elem, _) => elem.align(structs),
            Type::Struct(id) => structs[id.0].align,
        }
    }

    /// Whether values of this type fit in a register (everything except
    /// arrays, structs, and void).
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Char | Type::Ptr(_))
    }

    /// The pointee type for pointers, or element type for arrays.
    pub fn deref(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) | Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// The type this expression has after array-to-pointer decay.
    pub fn decayed(&self) -> Type {
        match self {
            Type::Array(elem, _) => Type::Ptr(elem.clone()),
            other => other.clone(),
        }
    }

    /// Whether a value of type `from` can be used where `self` is
    /// expected (MiniC's permissive conversion rule).
    pub fn accepts(&self, from: &Type) -> bool {
        let a = self.decayed();
        let b = from.decayed();
        match (&a, &b) {
            (Type::Void, Type::Void) => true,
            (Type::Void, _) | (_, Type::Void) => false,
            (Type::Struct(x), Type::Struct(y)) => x == y,
            (Type::Struct(_), _) | (_, Type::Struct(_)) => false,
            // int/char/pointers interconvert.
            _ => true,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::Int => f.write_str("int"),
            Type::Char => f.write_str("char"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::Struct(id) => write!(f, "struct#{}", id.0),
        }
    }
}

/// One field of a struct, with its computed byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Byte offset within the struct.
    pub offset: u32,
}

/// A struct definition with computed layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields with computed offsets, in declaration order.
    pub fields: Vec<Field>,
    /// Total size in bytes, padded to the alignment.
    pub size: u32,
    /// Required alignment in bytes.
    pub align: u32,
}

impl StructDef {
    /// Computes layout for a list of `(name, type)` fields.
    pub fn layout(name: String, raw: Vec<(String, Type)>, structs: &[StructDef]) -> StructDef {
        let mut fields = Vec::with_capacity(raw.len());
        let mut offset = 0u32;
        let mut align = 1u32;
        for (fname, ty) in raw {
            let a = ty.align(structs);
            align = align.max(a);
            offset = (offset + a - 1) & !(a - 1);
            let size = ty.size(structs);
            fields.push(Field { name: fname, ty, offset });
            offset += size;
        }
        let size = (offset + align - 1) & !(align - 1);
        StructDef { name, fields, size, align }
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_alignment() {
        let structs = &[];
        assert_eq!(Type::Int.size(structs), 4);
        assert_eq!(Type::Char.size(structs), 1);
        assert_eq!(Type::Int.ptr_to().size(structs), 4);
        assert_eq!(Type::Array(Box::new(Type::Char), 10).size(structs), 10);
        assert_eq!(Type::Array(Box::new(Type::Int), 10).align(structs), 4);
    }

    #[test]
    fn struct_layout_pads_fields() {
        let s = StructDef::layout(
            "s".into(),
            vec![("c".into(), Type::Char), ("i".into(), Type::Int), ("c2".into(), Type::Char)],
            &[],
        );
        assert_eq!(s.field("c").unwrap().offset, 0);
        assert_eq!(s.field("i").unwrap().offset, 4);
        assert_eq!(s.field("c2").unwrap().offset, 8);
        assert_eq!(s.size, 12); // padded to align 4
        assert_eq!(s.align, 4);
        assert!(s.field("nope").is_none());
    }

    #[test]
    fn nested_struct_size() {
        let inner = StructDef::layout("in".into(), vec![("a".into(), Type::Int)], &[]);
        let structs = vec![inner];
        let outer = StructDef::layout(
            "out".into(),
            vec![("s".into(), Type::Struct(StructId(0))), ("b".into(), Type::Int)],
            &structs,
        );
        assert_eq!(outer.size, 8);
    }

    #[test]
    fn decay_and_accepts() {
        let arr = Type::Array(Box::new(Type::Int), 4);
        assert_eq!(arr.decayed(), Type::Int.ptr_to());
        assert!(Type::Int.accepts(&Type::Char));
        assert!(Type::Int.ptr_to().accepts(&Type::Int));
        assert!(Type::Char.ptr_to().accepts(&arr));
        assert!(!Type::Int.accepts(&Type::Struct(StructId(0))));
        assert!(!Type::Void.accepts(&Type::Int));
        assert!(Type::Struct(StructId(1)).accepts(&Type::Struct(StructId(1))));
        assert!(!Type::Struct(StructId(1)).accepts(&Type::Struct(StructId(2))));
    }

    #[test]
    fn deref() {
        assert_eq!(Type::Int.ptr_to().deref(), Some(&Type::Int));
        assert_eq!(Type::Array(Box::new(Type::Char), 3).deref(), Some(&Type::Char));
        assert_eq!(Type::Int.deref(), None);
    }
}
