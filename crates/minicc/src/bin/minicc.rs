//! `minicc`: command-line driver for the MiniC toolchain.
//!
//! ```text
//! minicc run       prog.c [--input FILE] [--max-insns N]   compile + execute
//! minicc emit-asm  prog.c                                  print generated assembly
//! minicc disasm    prog.c                                  print assembled listing
//! minicc check     prog.c                                  type-check only
//! ```
//!
//! `run` feeds `--input` to the program's `read()` builtin, writes the
//! program's `write()` output to stdout, and exits with the program's
//! exit code.

use std::io::Write as _;
use std::process::ExitCode;

use instrep_minicc::{build, check, compile};
use instrep_sim::{Machine, RunOutcome};

fn usage() -> ExitCode {
    eprintln!("usage: minicc <run|emit-asm|disasm|check> FILE.c [--input FILE] [--max-insns N]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };

    let mut input: Vec<u8> = Vec::new();
    let mut max_insns: u64 = 2_000_000_000;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--input" => {
                let Some(p) = args.get(i + 1) else { return usage() };
                match std::fs::read(p) {
                    Ok(bytes) => input = bytes,
                    Err(e) => {
                        eprintln!("minicc: cannot read input `{p}`: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--max-insns" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                max_insns = n;
                i += 2;
            }
            _ => return usage(),
        }
    }

    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("minicc: cannot read `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "check" => match check(&src) {
            Ok(program) => {
                eprintln!(
                    "ok: {} function(s), {} global(s), {} struct(s)",
                    program.funcs.len(),
                    program.globals.len(),
                    program.structs.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        },
        "emit-asm" => match compile(&src) {
            Ok(asm) => {
                print!("{asm}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        },
        "disasm" => match build(&src) {
            Ok(image) => {
                print!("{}", instrep_asm::disassemble(&image));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        },
        "run" => {
            let image = match build(&src) {
                Ok(image) => image,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut machine = Machine::new(&image);
            machine.set_input(input);
            match machine.run(max_insns, |_| {}) {
                Ok(RunOutcome::Exited(code)) => {
                    let _ = std::io::stdout().write_all(machine.output());
                    eprintln!("[{} instructions, exit {code}]", machine.icount());
                    ExitCode::from((code & 0xff) as u8)
                }
                Ok(RunOutcome::MaxedOut) => {
                    eprintln!("{path}: exceeded {max_insns} instructions");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("{path}: trap: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
