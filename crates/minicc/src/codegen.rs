//! SRV32 code generation.
//!
//! Emits assembly text for a type-checked [`Program`]. The generated code
//! deliberately has the shape of classic MIPS o32 compiler output, because
//! the repetition analyses categorize exactly these shapes:
//!
//! * functions carry a prologue (frame allocation, `$ra` / `$s*` saves)
//!   and a matching epilogue;
//! * scalar locals live in callee-saved registers when possible, spilling
//!   to the frame otherwise;
//! * globals are addressed gp-relative when they fall in the 64 KiB gp
//!   window and through `lui/ori` materialization otherwise;
//! * the first four arguments travel in `$a0..$a3`, the rest in the
//!   caller's outgoing-argument area at `sp+16`.

use std::fmt::Write as _;

use instrep_isa::Reg;

use crate::ast::*;
use crate::error::CompileError;
use crate::types::Type;

fn err(line: u32, msg: impl Into<String>) -> CompileError {
    CompileError::new(line, msg)
}

/// Temporaries used as the expression evaluation stack, in order.
const T_REGS: [Reg; 10] =
    [Reg::T0, Reg::T1, Reg::T2, Reg::T3, Reg::T4, Reg::T5, Reg::T6, Reg::T7, Reg::T8, Reg::T9];

/// Callee-saved registers available for scalar locals.
const S_REGS: [Reg; 8] = [Reg::S0, Reg::S1, Reg::S2, Reg::S3, Reg::S4, Reg::S5, Reg::S6, Reg::S7];

/// Bytes reserved in every non-leaf frame for spilling live temporaries
/// around calls (one word per entry of the evaluation stack).
const SPILL_BYTES: u32 = 4 * T_REGS.len() as u32;

/// Generates assembly for a program that has passed [`crate::sema`].
///
/// # Errors
///
/// Returns an error for expressions too deep for the 10-register
/// evaluation stack (a static property surfaced with a source line).
pub fn generate(program: &Program) -> Result<String, CompileError> {
    let mut out = String::new();
    emit_data(program, &mut out);
    out.push_str(".text\n");
    for func in &program.funcs {
        FnGen::new(program, func, &mut out)?.run()?;
    }
    Ok(out)
}

fn emit_data(program: &Program, out: &mut String) {
    out.push_str(".data\n");
    for g in &program.globals {
        let structs = &program.structs;
        let size = g.ty.size(structs);
        let align = g.ty.align(structs);
        if align >= 4 {
            out.push_str(".align 2\n");
        }
        let _ = writeln!(out, "{}:", g.name);
        match &g.init {
            GlobalInit::None => {
                let _ = writeln!(out, "    .space {size}");
            }
            GlobalInit::Scalar(v) => match g.ty {
                Type::Char => {
                    let _ = writeln!(out, "    .byte {}", *v as u8);
                }
                _ => {
                    let _ = writeln!(out, "    .word {v}");
                }
            },
            GlobalInit::List(vals) => {
                let elem = g.ty.deref().cloned().unwrap_or(Type::Int);
                let n = size / elem.size(structs).max(1);
                let dir = if elem == Type::Char { ".byte" } else { ".word" };
                let mut padded: Vec<i64> = vals.clone();
                padded.resize(n as usize, 0);
                for chunk in padded.chunks(16) {
                    let row: Vec<String> = chunk.iter().map(|v| v.to_string()).collect();
                    let _ = writeln!(out, "    {dir} {}", row.join(", "));
                }
            }
            GlobalInit::Str(bytes) => {
                let mut padded = bytes.clone();
                padded.resize(size as usize, 0);
                emit_bytes(out, &padded);
            }
        }
    }
    for (i, s) in program.strings.iter().enumerate() {
        let _ = writeln!(out, ".Lstr{i}:");
        emit_bytes(out, s);
    }
}

fn emit_bytes(out: &mut String, bytes: &[u8]) {
    for chunk in bytes.chunks(16) {
        let row: Vec<String> = chunk.iter().map(|b| b.to_string()).collect();
        let _ = writeln!(out, "    .byte {}", row.join(", "));
    }
}

/// Where a local variable lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Home {
    /// In a callee-saved register.
    SReg(Reg),
    /// At `sp + offset` in the frame.
    Stack(u32),
}

struct FnGen<'a> {
    program: &'a Program,
    func: &'a Func,
    out: &'a mut String,
    labels: u32,
    /// Virtual evaluation-stack depth (index of next free T_REG).
    depth: usize,
    homes: Vec<Home>,
    sregs_used: Vec<Reg>,
    frame: u32,
    out_args: u32,
    spill_base: u32,
    ra_off: Option<u32>,
    sreg_save_base: u32,
    /// (continue label, break label) stack.
    loops: Vec<(String, String)>,
    /// Source line of the last `.loc` marker emitted (0 = none yet).
    cur_loc: u32,
}

impl<'a> FnGen<'a> {
    fn new(
        program: &'a Program,
        func: &'a Func,
        out: &'a mut String,
    ) -> Result<Self, CompileError> {
        // Pre-pass: leaf detection and maximum stack-argument count.
        let mut max_args = 0usize;
        let mut has_call = false;
        scan_calls(&func.body, &mut |n| {
            has_call = true;
            max_args = max_args.max(n);
        });

        let out_args = if has_call { 16 + 4 * (max_args.saturating_sub(4) as u32) } else { 0 };
        let spill_base = out_args;
        let locals_base = spill_base + if has_call { SPILL_BYTES } else { 0 };

        // Assign homes: scalars that are never addressed get s-registers.
        let mut homes = Vec::with_capacity(func.locals.len());
        let mut sregs_used = Vec::new();
        let mut stack_off = locals_base;
        let mut sreg_iter = S_REGS.iter();
        for local in &func.locals {
            if local.ty.is_scalar() && !local.addressed {
                if let Some(&s) = sreg_iter.next() {
                    homes.push(Home::SReg(s));
                    sregs_used.push(s);
                    continue;
                }
            }
            let align = local.ty.align(&program.structs).max(4);
            stack_off = (stack_off + align - 1) & !(align - 1);
            homes.push(Home::Stack(stack_off));
            stack_off += local.ty.size(&program.structs).max(4);
        }

        let sreg_save_base = (stack_off + 3) & !3;
        stack_off = sreg_save_base + 4 * sregs_used.len() as u32;
        let ra_off = if has_call {
            let off = stack_off;
            stack_off += 4;
            Some(off)
        } else {
            None
        };
        let frame = (stack_off + 7) & !7;

        Ok(FnGen {
            program,
            func,
            out,
            labels: 0,
            depth: 0,
            homes,
            sregs_used,
            frame,
            out_args,
            spill_base,
            ra_off,
            sreg_save_base,
            loops: Vec::new(),
            cur_loc: 0,
        })
    }

    fn emit(&mut self, line: impl AsRef<str>) {
        self.out.push_str("    ");
        self.out.push_str(line.as_ref());
        self.out.push('\n');
    }

    fn label(&mut self, l: &str) {
        self.out.push_str(l);
        self.out.push_str(":\n");
    }

    /// Emits a `.loc` source-line marker, deduplicating consecutive
    /// repeats. Line 0 means "unknown" and is never emitted.
    fn loc(&mut self, line: u32) {
        if line != 0 && line != self.cur_loc {
            let _ = writeln!(self.out, "    .loc {line}");
            self.cur_loc = line;
        }
    }

    fn fresh_label(&mut self, tag: &str) -> String {
        self.labels += 1;
        format!(".L{}_{}{}", self.func.name, tag, self.labels)
    }

    fn epilogue_label(&self) -> String {
        format!(".L{}_epi", self.func.name)
    }

    // -- evaluation stack ------------------------------------------------

    fn push(&mut self, line: u32) -> Result<Reg, CompileError> {
        if self.depth >= T_REGS.len() {
            return Err(err(line, "expression too complex (evaluation stack overflow)"));
        }
        let r = T_REGS[self.depth];
        self.depth += 1;
        Ok(r)
    }

    fn pop(&mut self) -> Reg {
        debug_assert!(self.depth > 0);
        self.depth -= 1;
        T_REGS[self.depth]
    }

    fn top(&self) -> Reg {
        T_REGS[self.depth - 1]
    }

    // -- function body ---------------------------------------------------

    fn run(mut self) -> Result<(), CompileError> {
        let _ = writeln!(self.out, ".func {}, {}", self.func.name, self.func.arity);
        self.label(&self.func.name.clone());
        self.loc(self.func.line);

        // Prologue.
        if self.frame > 0 {
            self.emit(format!("addi $sp, $sp, -{}", self.frame));
        }
        if let Some(off) = self.ra_off {
            self.emit(format!("sw $ra, {off}($sp)"));
        }
        let saves: Vec<(Reg, u32)> = self
            .sregs_used
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, self.sreg_save_base + 4 * i as u32))
            .collect();
        for &(s, off) in &saves {
            self.emit(format!("sw {s}, {off}($sp)"));
        }

        // Move parameters to their homes.
        for i in 0..self.func.arity {
            let home = self.homes[i];
            if i < 4 {
                let a = Reg::arg(i).expect("register argument");
                match home {
                    Home::SReg(s) => self.emit(format!("move {s}, {a}")),
                    Home::Stack(off) => self.emit(format!("sw {a}, {off}($sp)")),
                }
            } else {
                let in_off = self.frame + 16 + 4 * (i as u32 - 4);
                match home {
                    Home::SReg(s) => self.emit(format!("lw {s}, {in_off}($sp)")),
                    Home::Stack(off) => {
                        self.emit(format!("lw $t0, {in_off}($sp)"));
                        self.emit(format!("sw $t0, {off}($sp)"));
                    }
                }
            }
        }

        let body = self.func.body.clone();
        for stmt in &body {
            self.stmt(stmt)?;
        }

        // Fall-through return value defaults to 0.
        if self.func.ret != Type::Void {
            self.emit("addi $v0, $zero, 0");
        }
        self.label(&self.epilogue_label());
        for &(s, off) in &saves {
            self.emit(format!("lw {s}, {off}($sp)"));
        }
        if let Some(off) = self.ra_off {
            self.emit(format!("lw $ra, {off}($sp)"));
        }
        if self.frame > 0 {
            self.emit(format!("addi $sp, $sp, {}", self.frame));
        }
        self.emit("jr $ra");
        self.out.push_str(".endfunc\n");
        Ok(())
    }

    // -- statements --------------------------------------------------------

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        debug_assert_eq!(self.depth, 0, "evaluation stack must be empty between statements");
        self.loc(stmt_line(s));
        match s {
            Stmt::Decl { init, local, ty, line, .. } => {
                if let Some(e) = init {
                    self.expr(e)?;
                    let v = self.pop();
                    self.store_to_home(self.homes[*local], v, ty, *line);
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.pop();
                Ok(())
            }
            Stmt::If { cond, then, els } => {
                let lfalse = self.fresh_label("else");
                self.branch(cond, &lfalse, false)?;
                self.stmt(then)?;
                if let Some(els) = els {
                    let lend = self.fresh_label("endif");
                    self.emit(format!("b {lend}"));
                    self.label(&lfalse);
                    self.stmt(els)?;
                    self.label(&lend);
                } else {
                    self.label(&lfalse);
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let ltop = self.fresh_label("while");
                let lend = self.fresh_label("endwhile");
                self.label(&ltop);
                self.branch(cond, &lend, false)?;
                self.loops.push((ltop.clone(), lend.clone()));
                self.stmt(body)?;
                self.loops.pop();
                self.emit(format!("b {ltop}"));
                self.label(&lend);
                Ok(())
            }
            Stmt::For { init, cond, step, body } => {
                if let Some(e) = init {
                    self.expr(e)?;
                    self.pop();
                }
                let ltop = self.fresh_label("for");
                let lcont = self.fresh_label("forstep");
                let lend = self.fresh_label("endfor");
                self.label(&ltop);
                if let Some(c) = cond {
                    self.branch(c, &lend, false)?;
                }
                self.loops.push((lcont.clone(), lend.clone()));
                self.stmt(body)?;
                self.loops.pop();
                self.label(&lcont);
                if let Some(e) = step {
                    self.expr(e)?;
                    self.pop();
                }
                self.emit(format!("b {ltop}"));
                self.label(&lend);
                Ok(())
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    self.expr(e)?;
                    let r = self.pop();
                    self.emit(format!("move $v0, {r}"));
                }
                let epi = self.epilogue_label();
                self.emit(format!("b {epi}"));
                Ok(())
            }
            Stmt::Break { line } => {
                let lbl = self
                    .loops
                    .last()
                    .ok_or_else(|| err(*line, "break outside loop (sema bug)"))?
                    .1
                    .clone();
                self.emit(format!("b {lbl}"));
                Ok(())
            }
            Stmt::Continue { line } => {
                let lbl = self
                    .loops
                    .last()
                    .ok_or_else(|| err(*line, "continue outside loop (sema bug)"))?
                    .0
                    .clone();
                self.emit(format!("b {lbl}"));
                Ok(())
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.stmt(s)?;
                }
                Ok(())
            }
            Stmt::Empty => Ok(()),
        }
    }

    /// Stores the value in `v` into a local's home, applying char
    /// truncation semantics.
    fn store_to_home(&mut self, home: Home, v: Reg, ty: &Type, _line: u32) {
        match home {
            Home::SReg(s) => {
                if *ty == Type::Char {
                    self.emit(format!("andi {s}, {v}, 0xff"));
                } else {
                    self.emit(format!("move {s}, {v}"));
                }
            }
            Home::Stack(off) => {
                if *ty == Type::Char {
                    self.emit(format!("sb {v}, {off}($sp)"));
                } else {
                    self.emit(format!("sw {v}, {off}($sp)"));
                }
            }
        }
    }

    // -- branches ----------------------------------------------------------

    /// Emits a conditional jump to `target` when `cond` evaluates truthy
    /// (`jump_if == true`) or falsy (`jump_if == false`).
    fn branch(&mut self, cond: &Expr, target: &str, jump_if: bool) -> Result<(), CompileError> {
        match &cond.kind {
            ExprKind::Num(v) => {
                if (*v != 0) == jump_if {
                    self.emit(format!("b {target}"));
                }
                Ok(())
            }
            ExprKind::Unary(UnOp::Not, inner) => self.branch(inner, target, !jump_if),
            ExprKind::Binary(BinOp::LogAnd, l, r) => {
                if jump_if {
                    let skip = self.fresh_label("and");
                    self.branch(l, &skip, false)?;
                    self.branch(r, target, true)?;
                    self.label(&skip);
                } else {
                    self.branch(l, target, false)?;
                    self.branch(r, target, false)?;
                }
                Ok(())
            }
            ExprKind::Binary(BinOp::LogOr, l, r) => {
                if jump_if {
                    self.branch(l, target, true)?;
                    self.branch(r, target, true)?;
                } else {
                    let skip = self.fresh_label("or");
                    self.branch(l, &skip, true)?;
                    self.branch(r, target, false)?;
                    self.label(&skip);
                }
                Ok(())
            }
            ExprKind::Binary(op, l, r) if op.is_comparison() => {
                self.expr(l)?;
                self.expr(r)?;
                let b = self.pop();
                let a = self.pop();
                let mn = match (op, jump_if) {
                    (BinOp::Eq, true) | (BinOp::Ne, false) => "beq",
                    (BinOp::Eq, false) | (BinOp::Ne, true) => "bne",
                    (BinOp::Lt, true) | (BinOp::Ge, false) => "blt",
                    (BinOp::Lt, false) | (BinOp::Ge, true) => "bge",
                    (BinOp::Gt, true) | (BinOp::Le, false) => "bgt",
                    (BinOp::Gt, false) | (BinOp::Le, true) => "ble",
                    _ => unreachable!("non-comparison op"),
                };
                self.emit(format!("{mn} {a}, {b}, {target}"));
                Ok(())
            }
            _ => {
                self.expr(cond)?;
                let r = self.pop();
                let mn = if jump_if { "bnez" } else { "beqz" };
                self.emit(format!("{mn} {r}, {target}"));
                Ok(())
            }
        }
    }

    // -- expressions -------------------------------------------------------

    /// Generates code leaving the value of `e` in a fresh top-of-stack
    /// register. Array- and struct-typed expressions evaluate to their
    /// address (decay).
    fn expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        let line = e.line;
        match &e.kind {
            ExprKind::Num(v) => {
                let r = self.push(line)?;
                self.emit(format!("li {r}, {v}"));
                Ok(())
            }
            ExprKind::Str(i) => {
                let r = self.push(line)?;
                self.emit(format!("la {r}, .Lstr{i}"));
                Ok(())
            }
            ExprKind::Sizeof(ty) => {
                let size = ty.size(&self.program.structs);
                let r = self.push(line)?;
                self.emit(format!("li {r}, {size}"));
                Ok(())
            }
            ExprKind::Ident { name, storage } => {
                let storage =
                    storage.ok_or_else(|| err(line, "unresolved identifier (sema bug)"))?;
                match storage {
                    Storage::Local(i) => {
                        let home = self.homes[i];
                        let ty = self.func.locals[i].ty.clone();
                        let r = self.push(line)?;
                        match (home, ty.is_scalar()) {
                            (Home::SReg(s), _) => self.emit(format!("move {r}, {s}")),
                            (Home::Stack(off), true) => {
                                if ty == Type::Char {
                                    self.emit(format!("lbu {r}, {off}($sp)"));
                                } else {
                                    self.emit(format!("lw {r}, {off}($sp)"));
                                }
                            }
                            (Home::Stack(off), false) => self.emit(format!("addi {r}, $sp, {off}")),
                        }
                    }
                    Storage::Global => {
                        let ty = e.ty.clone();
                        let r = self.push(line)?;
                        if ty.is_scalar() {
                            if ty == Type::Char {
                                self.emit(format!("lbu {r}, {name}"));
                            } else {
                                self.emit(format!("lw {r}, {name}"));
                            }
                        } else {
                            self.emit(format!("la {r}, {name}"));
                        }
                    }
                }
                Ok(())
            }
            ExprKind::Unary(op, inner) => self.unary(*op, inner, e, line),
            ExprKind::Binary(op, l, r) => self.binary(*op, l, r, e, line),
            ExprKind::Assign { op, lhs, rhs } => self.assign(*op, lhs, rhs, line),
            ExprKind::IncDec { pre, inc, target } => self.inc_dec(*pre, *inc, target, line),
            ExprKind::Call { name, args } => self.call(name, args, line),
            ExprKind::Index(..) | ExprKind::Member { .. } => {
                if e.ty.is_scalar() {
                    self.addr_of(e)?;
                    let r = self.top();
                    self.load_scalar(r, r, &e.ty);
                } else {
                    // Aggregate element: its address is its value.
                    self.addr_of(e)?;
                }
                Ok(())
            }
        }
    }

    fn load_scalar(&mut self, dst: Reg, addr: Reg, ty: &Type) {
        if *ty == Type::Char {
            self.emit(format!("lbu {dst}, 0({addr})"));
        } else {
            self.emit(format!("lw {dst}, 0({addr})"));
        }
    }

    fn store_scalar(&mut self, src: Reg, addr: Reg, ty: &Type) {
        if *ty == Type::Char {
            self.emit(format!("sb {src}, 0({addr})"));
        } else {
            self.emit(format!("sw {src}, 0({addr})"));
        }
    }

    /// Pushes the address of an lvalue expression.
    fn addr_of(&mut self, e: &Expr) -> Result<(), CompileError> {
        let line = e.line;
        match &e.kind {
            ExprKind::Ident { name, storage } => {
                let storage =
                    storage.ok_or_else(|| err(line, "unresolved identifier (sema bug)"))?;
                match storage {
                    Storage::Local(i) => match self.homes[i] {
                        Home::Stack(off) => {
                            let r = self.push(line)?;
                            self.emit(format!("addi {r}, $sp, {off}"));
                            Ok(())
                        }
                        Home::SReg(_) => Err(err(line, "address of register local (sema bug)")),
                    },
                    Storage::Global => {
                        let r = self.push(line)?;
                        self.emit(format!("la {r}, {name}"));
                        Ok(())
                    }
                }
            }
            ExprKind::Str(i) => {
                let r = self.push(line)?;
                self.emit(format!("la {r}, .Lstr{i}"));
                Ok(())
            }
            ExprKind::Unary(UnOp::Deref, ptr) => self.expr(ptr),
            ExprKind::Index(base, idx) => {
                self.expr(base)?;
                self.expr(idx)?;
                let size = e.ty.size(&self.program.structs).max(1);
                self.scale_top(size, line)?;
                let i = self.pop();
                let b = self.top();
                self.emit(format!("add {b}, {b}, {i}"));
                Ok(())
            }
            ExprKind::Member { base, field, arrow } => {
                let sid = if *arrow {
                    match base.ty.decayed() {
                        Type::Ptr(inner) => match *inner {
                            Type::Struct(id) => id,
                            _ => return Err(err(line, "bad -> base (sema bug)")),
                        },
                        _ => return Err(err(line, "bad -> base (sema bug)")),
                    }
                } else {
                    match &base.ty {
                        Type::Struct(id) => *id,
                        _ => return Err(err(line, "bad . base (sema bug)")),
                    }
                };
                let offset = self.program.structs[sid.0]
                    .field(field)
                    .ok_or_else(|| err(line, "missing field (sema bug)"))?
                    .offset;
                if *arrow {
                    self.expr(base)?;
                } else {
                    self.addr_of(base)?;
                }
                if offset != 0 {
                    let r = self.top();
                    self.emit(format!("addi {r}, {r}, {offset}"));
                }
                Ok(())
            }
            _ => Err(err(line, "expression is not an lvalue (sema bug)")),
        }
    }

    /// Multiplies the top register by a constant element size.
    fn scale_top(&mut self, size: u32, line: u32) -> Result<(), CompileError> {
        if size == 1 {
            return Ok(());
        }
        let r = self.top();
        if size.is_power_of_two() {
            self.emit(format!("sll {r}, {r}, {}", size.trailing_zeros()));
        } else {
            let tmp = self.push(line)?;
            self.emit(format!("li {tmp}, {size}"));
            self.emit(format!("mul {r}, {r}, {tmp}"));
            self.pop();
        }
        Ok(())
    }

    /// Divides the top register by a constant element size (for ptr-ptr
    /// subtraction). Addresses are positive so arithmetic shift is exact.
    fn unscale_top(&mut self, size: u32, line: u32) -> Result<(), CompileError> {
        if size == 1 {
            return Ok(());
        }
        let r = self.top();
        if size.is_power_of_two() {
            self.emit(format!("sra {r}, {r}, {}", size.trailing_zeros()));
        } else {
            let tmp = self.push(line)?;
            self.emit(format!("li {tmp}, {size}"));
            self.emit(format!("div {r}, {r}, {tmp}"));
            self.pop();
        }
        Ok(())
    }

    fn unary(&mut self, op: UnOp, inner: &Expr, e: &Expr, _line: u32) -> Result<(), CompileError> {
        match op {
            UnOp::Addr => self.addr_of(inner),
            UnOp::Deref => {
                if e.ty.is_scalar() {
                    self.expr(inner)?;
                    let r = self.top();
                    self.load_scalar(r, r, &e.ty);
                } else {
                    self.expr(inner)?;
                }
                Ok(())
            }
            UnOp::Neg => {
                self.expr(inner)?;
                let r = self.top();
                self.emit(format!("neg {r}, {r}"));
                Ok(())
            }
            UnOp::BitNot => {
                self.expr(inner)?;
                let r = self.top();
                self.emit(format!("not {r}, {r}"));
                Ok(())
            }
            UnOp::Not => {
                self.expr(inner)?;
                let r = self.top();
                self.emit(format!("sltiu {r}, {r}, 1"));
                Ok(())
            }
        }
    }

    fn binary(
        &mut self,
        op: BinOp,
        l: &Expr,
        r: &Expr,
        e: &Expr,
        line: u32,
    ) -> Result<(), CompileError> {
        // Short-circuit logicals synthesize a 0/1 value via branches.
        if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
            let res = self.push(line)?;
            let lfalse = self.fresh_label("sc");
            let lend = self.fresh_label("scend");
            // branch() evaluates its operands above the reserved slot.
            self.branch(e, &lfalse, false)?;
            self.emit(format!("li {res}, 1"));
            self.emit(format!("b {lend}"));
            self.label(&lfalse);
            self.emit(format!("li {res}, 0"));
            self.label(&lend);
            return Ok(());
        }

        self.expr(l)?;
        // Pointer arithmetic scaling.
        let lt = l.ty.decayed();
        let rt = r.ty.decayed();
        match op {
            BinOp::Add => {
                if let Type::Ptr(elem) = &lt {
                    let size = elem.size(&self.program.structs).max(1);
                    self.expr(r)?;
                    self.scale_top(size, line)?;
                } else if let Type::Ptr(elem) = &rt {
                    // int + ptr: scale the int (currently on top).
                    let size = elem.size(&self.program.structs).max(1);
                    self.scale_top(size, line)?;
                    self.expr(r)?;
                } else {
                    self.expr(r)?;
                }
                let b = self.pop();
                let a = self.top();
                self.emit(format!("add {a}, {a}, {b}"));
                return Ok(());
            }
            BinOp::Sub => {
                if let (Type::Ptr(ea), Type::Ptr(_)) = (&lt, &rt) {
                    self.expr(r)?;
                    let b = self.pop();
                    let a = self.top();
                    self.emit(format!("sub {a}, {a}, {b}"));
                    let size = ea.size(&self.program.structs).max(1);
                    self.unscale_top(size, line)?;
                    return Ok(());
                }
                if let Type::Ptr(elem) = &lt {
                    let size = elem.size(&self.program.structs).max(1);
                    self.expr(r)?;
                    self.scale_top(size, line)?;
                    let b = self.pop();
                    let a = self.top();
                    self.emit(format!("sub {a}, {a}, {b}"));
                    return Ok(());
                }
                self.expr(r)?;
                let b = self.pop();
                let a = self.top();
                self.emit(format!("sub {a}, {a}, {b}"));
                return Ok(());
            }
            _ => {}
        }
        self.expr(r)?;
        let b = self.pop();
        let a = self.top();
        match op {
            BinOp::Mul => self.emit(format!("mul {a}, {a}, {b}")),
            BinOp::Div => self.emit(format!("div {a}, {a}, {b}")),
            BinOp::Rem => self.emit(format!("rem {a}, {a}, {b}")),
            BinOp::And => self.emit(format!("and {a}, {a}, {b}")),
            BinOp::Or => self.emit(format!("or {a}, {a}, {b}")),
            BinOp::Xor => self.emit(format!("xor {a}, {a}, {b}")),
            BinOp::Shl => self.emit(format!("sllv {a}, {b}, {a}")),
            BinOp::Shr => self.emit(format!("srav {a}, {b}, {a}")),
            BinOp::Lt => self.emit(format!("slt {a}, {a}, {b}")),
            BinOp::Gt => self.emit(format!("slt {a}, {b}, {a}")),
            BinOp::Le => {
                self.emit(format!("slt {a}, {b}, {a}"));
                self.emit(format!("xori {a}, {a}, 1"));
            }
            BinOp::Ge => {
                self.emit(format!("slt {a}, {a}, {b}"));
                self.emit(format!("xori {a}, {a}, 1"));
            }
            BinOp::Eq => self.emit(format!("seq {a}, {a}, {b}")),
            BinOp::Ne => self.emit(format!("sne {a}, {a}, {b}")),
            BinOp::Add | BinOp::Sub | BinOp::LogAnd | BinOp::LogOr => unreachable!(),
        }
        Ok(())
    }

    fn assign(
        &mut self,
        op: Option<BinOp>,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> Result<(), CompileError> {
        // Fast path: register-resident scalar local.
        if let ExprKind::Ident { storage: Some(Storage::Local(i)), .. } = &lhs.kind {
            if let Home::SReg(s) = self.homes[*i] {
                let ty = self.func.locals[*i].ty.clone();
                match op {
                    None => {
                        self.expr(rhs)?;
                        let r = self.top();
                        if ty == Type::Char {
                            self.emit(format!("andi {r}, {r}, 0xff"));
                        }
                        self.emit(format!("move {s}, {r}"));
                    }
                    Some(op) => {
                        self.expr(rhs)?;
                        let r = self.top();
                        self.apply_compound(op, s, s, r, &lhs.ty, line)?;
                        if ty == Type::Char {
                            self.emit(format!("andi {s}, {s}, 0xff"));
                        }
                        self.emit(format!("move {r}, {s}"));
                    }
                }
                return Ok(());
            }
        }

        match op {
            None => {
                self.addr_of(lhs)?;
                self.expr(rhs)?;
                let v = self.top();
                if lhs.ty == Type::Char {
                    self.emit(format!("andi {v}, {v}, 0xff"));
                }
                let v = self.pop();
                let a = self.top();
                self.store_scalar(v, a, &lhs.ty);
                // Result is the stored value, in the slot the address held.
                self.emit(format!("move {a}, {v}"));
                Ok(())
            }
            Some(op) => {
                self.addr_of(lhs)?;
                let a = self.top();
                let old = self.push(line)?;
                self.load_scalar(old, a, &lhs.ty);
                self.expr(rhs)?;
                let r = self.top();
                self.apply_compound(op, old, old, r, &lhs.ty, line)?;
                if lhs.ty == Type::Char {
                    self.emit(format!("andi {old}, {old}, 0xff"));
                }
                self.pop(); // rhs
                let old = self.pop();
                let a = self.top();
                self.store_scalar(old, a, &lhs.ty);
                self.emit(format!("move {a}, {old}"));
                Ok(())
            }
        }
    }

    /// Emits `dst = a OP b`, scaling `b` for pointer arithmetic.
    fn apply_compound(
        &mut self,
        op: BinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
        lhs_ty: &Type,
        line: u32,
    ) -> Result<(), CompileError> {
        if let (BinOp::Add | BinOp::Sub, Type::Ptr(elem)) = (op, &lhs_ty.decayed()) {
            // b is on the eval stack top or an arbitrary reg; scale needs
            // the top-of-stack discipline, so scale b in place if it is
            // the top register.
            let size = elem.size(&self.program.structs).max(1);
            if size != 1 {
                if size.is_power_of_two() {
                    self.emit(format!("sll {b}, {b}, {}", size.trailing_zeros()));
                } else {
                    let tmp = self.push(line)?;
                    self.emit(format!("li {tmp}, {size}"));
                    self.emit(format!("mul {b}, {b}, {tmp}"));
                    self.pop();
                }
            }
        }
        let mn = match op {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => {
                self.emit(format!("sllv {dst}, {b}, {a}"));
                return Ok(());
            }
            BinOp::Shr => {
                self.emit(format!("srav {dst}, {b}, {a}"));
                return Ok(());
            }
            other => return Err(err(line, format!("bad compound operator {other:?}"))),
        };
        self.emit(format!("{mn} {dst}, {a}, {b}"));
        Ok(())
    }

    fn inc_dec(
        &mut self,
        pre: bool,
        inc: bool,
        target: &Expr,
        line: u32,
    ) -> Result<(), CompileError> {
        let delta: i64 = {
            let step = match &target.ty.decayed() {
                Type::Ptr(elem) => i64::from(elem.size(&self.program.structs).max(1)),
                _ => 1,
            };
            if inc {
                step
            } else {
                -step
            }
        };
        // Register-resident local.
        if let ExprKind::Ident { storage: Some(Storage::Local(i)), .. } = &target.kind {
            if let Home::SReg(s) = self.homes[*i] {
                let ty = self.func.locals[*i].ty.clone();
                let r = self.push(line)?;
                if !pre {
                    self.emit(format!("move {r}, {s}"));
                }
                self.emit(format!("addi {s}, {s}, {delta}"));
                if ty == Type::Char {
                    self.emit(format!("andi {s}, {s}, 0xff"));
                }
                if pre {
                    self.emit(format!("move {r}, {s}"));
                }
                return Ok(());
            }
        }
        self.addr_of(target)?;
        let a = self.top();
        let v = self.push(line)?;
        self.load_scalar(v, a, &target.ty);
        if pre {
            self.emit(format!("addi {v}, {v}, {delta}"));
            if target.ty == Type::Char {
                self.emit(format!("andi {v}, {v}, 0xff"));
            }
            self.store_scalar(v, a, &target.ty);
            let v = self.pop();
            let a = self.top();
            self.emit(format!("move {a}, {v}"));
        } else {
            let n = self.push(line)?;
            self.emit(format!("addi {n}, {v}, {delta}"));
            if target.ty == Type::Char {
                self.emit(format!("andi {n}, {n}, 0xff"));
            }
            self.store_scalar(n, a, &target.ty);
            self.pop(); // n
            let v = self.pop();
            let a = self.top();
            self.emit(format!("move {a}, {v}"));
        }
        Ok(())
    }

    fn call(&mut self, name: &str, args: &[Expr], line: u32) -> Result<(), CompileError> {
        // Evaluate all arguments onto the evaluation stack first: a nested
        // call inside a later argument would clobber the shared outgoing
        // slots if earlier arguments were already parked there.
        debug_assert!(self.out_args >= 16 || args.is_empty());
        let base = self.depth;
        for arg in args {
            self.expr(arg)?;
        }
        for i in 0..args.len() {
            self.emit(format!("sw {}, {}($sp)", T_REGS[base + i], 4 * i));
        }
        self.depth = base;
        // Spill live temporaries (caller-saved) around the call.
        let live = self.depth;
        for (d, reg) in T_REGS.iter().enumerate().take(live) {
            let off = self.spill_base + 4 * d as u32;
            self.emit(format!("sw {reg}, {off}($sp)"));
        }
        for i in 0..args.len().min(4) {
            let a = Reg::arg(i).expect("register argument");
            self.emit(format!("lw {a}, {}($sp)", 4 * i));
        }
        self.emit(format!("jal {name}"));
        let res = self.push(line)?;
        self.emit(format!("move {res}, $v0"));
        for (d, reg) in T_REGS.iter().enumerate().take(live) {
            let off = self.spill_base + 4 * d as u32;
            self.emit(format!("lw {reg}, {off}($sp)"));
        }
        Ok(())
    }
}

/// Source line a statement's first instruction should be attributed to
/// (0 = no line of its own; blocks defer to their inner statements).
fn stmt_line(s: &Stmt) -> u32 {
    match s {
        Stmt::Decl { line, .. }
        | Stmt::Return { line, .. }
        | Stmt::Break { line }
        | Stmt::Continue { line } => *line,
        Stmt::Expr(e) => e.line,
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => cond.line,
        Stmt::For { init, cond, step, .. } => {
            [init, cond, step].into_iter().flatten().map(|e| e.line).find(|&l| l != 0).unwrap_or(0)
        }
        Stmt::Block(_) | Stmt::Empty => 0,
    }
}

/// Walks all statements, invoking `f` with the argument count of every
/// call expression found.
fn scan_calls(stmts: &[Stmt], f: &mut impl FnMut(usize)) {
    for s in stmts {
        scan_stmt(s, f);
    }
}

fn scan_stmt(s: &Stmt, f: &mut impl FnMut(usize)) {
    match s {
        Stmt::Decl { init, .. } => {
            if let Some(e) = init {
                scan_expr(e, f);
            }
        }
        Stmt::Expr(e) => scan_expr(e, f),
        Stmt::If { cond, then, els } => {
            scan_expr(cond, f);
            scan_stmt(then, f);
            if let Some(e) = els {
                scan_stmt(e, f);
            }
        }
        Stmt::While { cond, body } => {
            scan_expr(cond, f);
            scan_stmt(body, f);
        }
        Stmt::For { init, cond, step, body } => {
            for e in [init, cond, step].into_iter().flatten() {
                scan_expr(e, f);
            }
            scan_stmt(body, f);
        }
        Stmt::Return { value, .. } => {
            if let Some(e) = value {
                scan_expr(e, f);
            }
        }
        Stmt::Block(stmts) => scan_calls(stmts, f),
        Stmt::Break { .. } | Stmt::Continue { .. } | Stmt::Empty => {}
    }
}

fn scan_expr(e: &Expr, f: &mut impl FnMut(usize)) {
    match &e.kind {
        ExprKind::Call { args, .. } => {
            f(args.len());
            for a in args {
                scan_expr(a, f);
            }
        }
        ExprKind::Unary(_, inner) => scan_expr(inner, f),
        ExprKind::Binary(_, l, r) => {
            scan_expr(l, f);
            scan_expr(r, f);
        }
        ExprKind::Assign { lhs, rhs, .. } => {
            scan_expr(lhs, f);
            scan_expr(rhs, f);
        }
        ExprKind::IncDec { target, .. } => scan_expr(target, f),
        ExprKind::Index(b, i) => {
            scan_expr(b, f);
            scan_expr(i, f);
        }
        ExprKind::Member { base, .. } => scan_expr(base, f),
        ExprKind::Num(_) | ExprKind::Str(_) | ExprKind::Ident { .. } | ExprKind::Sizeof(_) => {}
    }
}
