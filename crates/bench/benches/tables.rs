//! One bench per paper table and figure: each measures the end-to-end
//! regeneration of that result (simulation + analyses + rendering) on a
//! representative workload at bench scale.
//!
//! `cargo bench -p instrep-bench --bench tables` therefore re-derives
//! every experiment of the paper; the printed table text is checked
//! non-empty so a silent regression cannot pass as a fast bench.

use criterion::{criterion_group, criterion_main, Criterion};
use instrep_core::report::{self, Named};
use instrep_core::{AnalysisConfig, Session, WorkloadReport};
use instrep_workloads::{by_name, Scale};

fn make_report(workload: &str) -> (String, WorkloadReport) {
    let wl = by_name(workload).expect("workload exists");
    let image = wl.build().expect("builds");
    let cfg = AnalysisConfig { skip: 10_000, window: 150_000, ..AnalysisConfig::default() };
    let r = Session::new(cfg).run_one(&image, wl.input(Scale::Tiny, 1998)).expect("analyzes");
    (wl.name.to_string(), r.report)
}

/// Benches one experiment: the pipeline run plus that table's rendering.
fn bench_experiment(
    c: &mut Criterion,
    id: &str,
    workload: &str,
    render: fn(&[Named<'_>]) -> String,
) {
    c.bench_function(&format!("repro/{id}"), |b| {
        b.iter(|| {
            let (name, r) = make_report(workload);
            let text = render(&[(name.as_str(), &r)]);
            assert!(!text.is_empty());
            text.len()
        })
    });
}

fn benches(c: &mut Criterion) {
    // Tables.
    bench_experiment(c, "table1", "go", report::table1);
    bench_experiment(c, "table2", "m88ksim", report::table2);
    bench_experiment(c, "table3", "compress", report::table3);
    bench_experiment(c, "table4", "ijpeg", report::table4);
    bench_experiment(c, "table5_6_7", "vortex", report::tables5_6_7);
    bench_experiment(c, "table8", "li", report::table8);
    bench_experiment(c, "table9", "perl", report::table9);
    bench_experiment(c, "table10", "gcc", report::table10);
    // Figures.
    bench_experiment(c, "figure1", "go", report::figure1);
    bench_experiment(c, "figure3", "li", report::figure3);
    bench_experiment(c, "figure4", "compress", report::figure4);
    bench_experiment(c, "figure5", "m88ksim", report::figure5);
    bench_experiment(c, "figure6", "vortex", report::figure6);
    // Figure 2 is the paper's worked definition example; its executable
    // form is the tracker's `paper_figure_2_example` unit test.
}

criterion_group!(
    name = table_benches;
    config = Criterion::default().sample_size(10);
    targets = benches
);
criterion_main!(table_benches);
