//! Substrate microbenchmarks: simulator, assembler, and compiler
//! throughput. These bound how large an analysis window the machine can
//! afford (DESIGN.md §3's scaling substitution).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use instrep_asm::assemble;
use instrep_minicc::{build, compile};
use instrep_sim::Machine;

/// A compute-heavy MiniC program used for throughput measurement.
const HOT_LOOP: &str = r#"
    int tab[64];
    int main() {
        int i;
        for (i = 0; i < 64; i++) tab[i] = i * i;
        int acc = 0;
        int n;
        for (n = 0; n < 20000; n++) {
            acc = (acc + tab[n & 63]) ^ (n << 1);
        }
        return acc & 0xff;
    }
"#;

fn bench_sim_speed(c: &mut Criterion) {
    let image = build(HOT_LOOP).expect("program builds");
    // Count the exact instruction total once.
    let mut probe = Machine::new(&image);
    probe.run(u64::MAX, |_| {}).unwrap();
    let insns = probe.icount();

    let mut g = c.benchmark_group("substrate/sim");
    g.throughput(Throughput::Elements(insns));
    g.bench_function("interpret", |b| {
        b.iter(|| {
            let mut m = Machine::new(&image);
            m.run(u64::MAX, |_| {}).unwrap();
            m.icount()
        })
    });
    g.bench_function("interpret_with_observer", |b| {
        b.iter(|| {
            let mut m = Machine::new(&image);
            let mut outs = 0u64;
            m.run(u64::MAX, |ev| {
                outs += u64::from(ev.out.is_some());
            })
            .unwrap();
            outs
        })
    });
    g.finish();
}

fn bench_assembler(c: &mut Criterion) {
    // A sizeable assembly module: the compiled hot loop plus runtime.
    let asm_text = {
        let mut t = compile(HOT_LOOP).expect("compiles");
        t.push_str(instrep_minicc::runtime::RUNTIME_ASM);
        t
    };
    let mut g = c.benchmark_group("substrate/asm");
    g.throughput(Throughput::Bytes(asm_text.len() as u64));
    g.bench_function("assemble", |b| b.iter(|| assemble(&asm_text).unwrap().text.len()));
    g.finish();
}

fn bench_compiler(c: &mut Criterion) {
    // The biggest real source in the repository: the li interpreter.
    let wl = instrep_workloads::by_name("li").expect("li exists");
    let mut src = String::from(instrep_workloads::PRELUDE);
    src.push_str(wl.source);
    let mut g = c.benchmark_group("substrate/minicc");
    g.throughput(Throughput::Bytes(src.len() as u64));
    g.bench_function("compile_li", |b| b.iter(|| compile(&src).unwrap().len()));
    g.bench_function("build_li", |b| b.iter(|| build(&src).unwrap().text.len()));
    g.finish();
}

fn bench_memory(c: &mut Criterion) {
    use instrep_sim::Memory;
    let mut g = c.benchmark_group("substrate/memory");
    g.bench_function("store_load_word", |b| {
        let mut m = Memory::new();
        let mut addr = 0x1000_0000u32;
        b.iter(|| {
            addr = addr.wrapping_add(4) & 0x1fff_fffc | 0x1000_0000;
            m.store_u32(addr, addr);
            m.load_u32(addr)
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim_speed, bench_assembler, bench_compiler, bench_memory
);
criterion_main!(benches);
