//! Per-analysis overhead: each observer's cost on a recorded event
//! trace, isolating tracker / global / function / local / reuse costs
//! from simulation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use instrep_core::{
    FunctionAnalysis, GlobalAnalysis, LocalAnalysis, RepetitionTracker, ReuseBuffer, ReuseConfig,
    TrackerConfig,
};
use instrep_isa::abi::region_of;
use instrep_sim::{Machine, Trace};
use instrep_workloads::{by_name, Scale};

struct Recorded {
    image: instrep_asm::Image,
    trace: Trace,
}

fn record(name: &str, max: u64) -> Recorded {
    let wl = by_name(name).expect("workload exists");
    let image = wl.build().expect("builds");
    let mut m = Machine::new(&image);
    m.set_input(wl.input(Scale::Tiny, 7));
    let trace = Trace::record(&mut m, max).unwrap();
    Recorded { image, trace }
}

fn bench_observers(c: &mut Criterion) {
    let trace = record("vortex", 200_000);
    let n = trace.trace.len() as u64;
    let data_end = trace.image.data_end();

    let mut g = c.benchmark_group("analyses");
    g.throughput(Throughput::Elements(n));

    g.bench_function("tracker", |b| {
        b.iter(|| {
            let mut t = RepetitionTracker::new(TrackerConfig::default(), trace.image.text.len());
            for ev in trace.trace.events() {
                t.observe(ev);
            }
            t.dynamic_repeated()
        })
    });

    g.bench_function("global", |b| {
        b.iter(|| {
            let mut a = GlobalAnalysis::new(&trace.image);
            for ev in trace.trace.events() {
                a.observe(ev, false, true);
            }
            a.counts().total()
        })
    });

    g.bench_function("function", |b| {
        b.iter(|| {
            let mut a = FunctionAnalysis::new(&trace.image);
            for ev in trace.trace.events() {
                let region = ev.mem.map(|m| region_of(m.addr, data_end, u32::MAX / 2));
                a.observe(ev, true, region);
            }
            a.total_calls()
        })
    });

    g.bench_function("local", |b| {
        b.iter(|| {
            let mut a = LocalAnalysis::new(&trace.image);
            for ev in trace.trace.events() {
                let region = ev.mem.map(|m| region_of(m.addr, data_end, u32::MAX / 2));
                a.observe(ev, false, true, region);
            }
            a.counts().total()
        })
    });

    g.bench_function("reuse_buffer", |b| {
        b.iter(|| {
            let mut buf = ReuseBuffer::new(ReuseConfig::paper());
            for ev in trace.trace.events() {
                buf.observe(ev, false);
            }
            buf.stats().hits
        })
    });

    g.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    use instrep_core::{AnalysisConfig, Session};
    let wl = by_name("compress").expect("compress exists");
    let image = wl.build().expect("builds");
    let input = wl.input(Scale::Tiny, 7);
    let cfg = AnalysisConfig { window: 200_000, ..AnalysisConfig::default() };

    let mut g = c.benchmark_group("analyses");
    g.throughput(Throughput::Elements(200_000));
    g.bench_function("full_pipeline", |b| {
        b.iter(|| Session::new(cfg).run_one(&image, input.clone()).unwrap().report.dynamic_repeated)
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_observers, bench_full_pipeline
);
criterion_main!(benches);
