//! Ablation benches for the design choices DESIGN.md §8 calls out:
//!
//! * reuse-buffer geometry (size × associativity) against Table 10's
//!   8K/4-way point;
//! * the tracker's 2000-instance buffer cap against smaller caps
//!   (quantifying the Figure 3 observation that many instructions need
//!   hundreds of tracked instances);
//! * a last-value-only tracker, the degenerate cap=1 point used by
//!   last-value prediction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use instrep_core::{RepetitionTracker, ReuseBuffer, ReuseConfig, TrackerConfig};
use instrep_sim::{Machine, Trace};
use instrep_workloads::{by_name, Scale};

fn record(name: &str, max: u64) -> (instrep_asm::Image, Trace) {
    let wl = by_name(name).expect("workload exists");
    let image = wl.build().expect("builds");
    let mut m = Machine::new(&image);
    m.set_input(wl.input(Scale::Tiny, 7));
    let trace = Trace::record(&mut m, max).unwrap();
    (image, trace)
}

fn bench_reuse_geometry(c: &mut Criterion) {
    let (_, rec) = record("ijpeg", 150_000);
    let mut g = c.benchmark_group("ablation/reuse_geometry");
    g.throughput(Throughput::Elements(rec.len() as u64));
    for entries in [1024usize, 8192, 32768] {
        for ways in [1usize, 4] {
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("{entries}x{ways}")),
                &(entries, ways),
                |b, &(entries, ways)| {
                    b.iter(|| {
                        let mut buf = ReuseBuffer::new(ReuseConfig { entries, ways });
                        for ev in rec.events() {
                            buf.observe(ev, false);
                        }
                        buf.stats().hits
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_tracker_cap(c: &mut Criterion) {
    let (image, rec) = record("li", 150_000);
    let mut g = c.benchmark_group("ablation/tracker_cap");
    g.throughput(Throughput::Elements(rec.len() as u64));
    for cap in [1usize, 16, 256, 2000] {
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let mut t =
                    RepetitionTracker::new(TrackerConfig { max_instances: cap }, image.text.len());
                let mut repeated = 0u64;
                for ev in rec.events() {
                    repeated += u64::from(t.observe(ev));
                }
                repeated
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_reuse_geometry, bench_tracker_cap
);
criterion_main!(benches);
