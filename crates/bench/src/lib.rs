//! Benchmark-only crate; all content lives in `benches/`.
//!
//! Run `cargo bench -p instrep-bench` to regenerate the paper's tables
//! and figures at benchmark scale and to measure substrate throughput.
