#!/usr/bin/env bash
# Performance-trajectory benchmark. Runs the pinned workloads RUNS times
# per scale via `instrep-repro --bench` (which writes a median+IQR
# summary per scale) and wraps the per-scale summaries into one
# `BENCH_<date>.json` trajectory document at the repo root. Commit the
# file: successive entries across PRs chart the pipeline's throughput
# over time (see DESIGN.md for the schema and methodology).
#
# Besides the per-scale summaries the document carries one
# `observer-costs` entry: the split (oracle) tier re-run at OBS_SCALE
# with each of the seven observers disabled in turn, and the marginal
# ns/event each observer costs derived from the deltas. Skip the sweep
# with OBS_SWEEP=0 when only the trajectory numbers are wanted.
#
# A `loops-cost` entry prices the loop-nest profiler the same way: each
# pass runs the pipeline back to back with the loop probe off and on
# (plain runs, not --bench — the probe is mutually exclusive with
# --bench), and the marginal measure-phase ns/event is the same-pass
# delta, median across RUNS passes. Skip with LOOPS_SWEEP=0.
#
# Modes:
#   scripts/bench.sh            run the benchmark and write BENCH_<date>.json
#                               (suffixed b, c, ... if the date is taken —
#                               re-benching after a perf change on the same
#                               day must not overwrite the 'before' file)
#   scripts/bench.sh --check    validate every committed BENCH_*.json
#                               (schema version + kinds, and the
#                               observer-costs fields where that entry is
#                               present); non-zero on drift
#   scripts/bench.sh --concat   merge all BENCH_*.json, ordered by file
#                               name (dates sort chronologically), into one
#                               bench-history document on stdout
#
# Tunables (env): RUNS (default 3), SCALES ("tiny small"), JOBS (4),
# SEED (1998), OUT (first free BENCH_$(date +%F)*.json), OBS_SWEEP (1),
# LOOPS_SWEEP (1), OBS_SCALE (tiny — shared by both cost sweeps),
# SETTLE_MS (500 — repetition-tester settle window for the trajectory
# runs; the cost sweeps always run back to back so same-pass deltas
# cancel machine drift).
set -euo pipefail
cd "$(dirname "$0")/.."

# Trajectory files, oldest first (ISO dates in the name sort correctly).
trajectory_files() {
    ls BENCH_*.json 2>/dev/null | LC_ALL=C sort
}

check_trajectories() {
    local files status=0
    files="$(trajectory_files)"
    if [ -z "$files" ]; then
        echo "no BENCH_*.json trajectory files to check"
        return 0
    fi
    for f in $files; do
        if ! grep -q '"schema_version": 1,' "$f"; then
            echo "bench schema drift: expected schema_version 1 in $f" >&2
            status=1
        fi
        if ! grep -q '"kind": "bench-trajectory",' "$f"; then
            echo "bench schema drift: expected kind \"bench-trajectory\" in $f" >&2
            status=1
        fi
        if ! grep -q '"kind": "bench",' "$f"; then
            echo "bench schema drift: $f carries no per-scale bench summaries" >&2
            status=1
        fi
        # Files benched since the observer sweep landed carry an
        # observer-costs entry; where one is present its fields must be
        # intact (older trajectory files legitimately predate it).
        # Files benched since the repetition-tester upgrade carry
        # min/max/avg beside median+IQR; where min_ms is present the
        # other two must be too (older files legitimately predate them).
        if grep -q '"min_ms":' "$f"; then
            if ! grep -q '"max_ms":' "$f"; then
                echo "bench schema drift: $f has min_ms but no max_ms" >&2
                status=1
            fi
            if ! grep -q '"avg_ms":' "$f"; then
                echo "bench schema drift: $f has min_ms but no avg_ms" >&2
                status=1
            fi
        fi
        if grep -q '"kind": "observer-costs",' "$f"; then
            if ! grep -q '"baseline_ns_per_event":' "$f"; then
                echo "bench schema drift: observer-costs entry in $f lacks baseline_ns_per_event" >&2
                status=1
            fi
            if ! grep -q '"marginal_ns_per_event":' "$f"; then
                echo "bench schema drift: observer-costs entry in $f lacks marginal_ns_per_event" >&2
                status=1
            fi
        fi
        # Files benched since the loop-nest profiler landed carry a
        # loops-cost entry; where one is present its fields must be
        # intact (older files legitimately predate it).
        if grep -q '"kind": "loops-cost",' "$f"; then
            if ! grep -q '"probed_ns_per_event":' "$f"; then
                echo "bench schema drift: loops-cost entry in $f lacks probed_ns_per_event" >&2
                status=1
            fi
            if ! grep -q '"marginal_ns_per_event":' "$f"; then
                echo "bench schema drift: loops-cost entry in $f lacks marginal_ns_per_event" >&2
                status=1
            fi
        fi
    done
    [ "$status" -eq 0 ] && echo "bench trajectories OK ($(echo "$files" | wc -l) file(s))"
    return "$status"
}

concat_trajectories() {
    local files n first=1
    files="$(trajectory_files)"
    if [ -z "$files" ]; then
        echo "no BENCH_*.json trajectory files to concatenate" >&2
        return 1
    fi
    n="$(echo "$files" | wc -l | tr -d ' ')"
    printf '{\n'
    printf '  "schema_version": 1,\n'
    printf '  "kind": "bench-history",\n'
    printf '  "files": %s,\n' "$n"
    printf '  "entries": [\n'
    for f in $files; do
        if [ "$first" -eq 0 ]; then printf ',\n'; fi
        first=0
        printf '%s' "$(sed 's/^/    /' "$f")"
    done
    printf '\n  ]\n'
    printf '}\n'
}

case "${1:-}" in
--check)
    check_trajectories
    exit
    ;;
--concat)
    concat_trajectories
    exit
    ;;
"") ;;
*)
    echo "usage: scripts/bench.sh [--check | --concat]" >&2
    exit 2
    ;;
esac

RUNS="${RUNS:-3}"
SCALES="${SCALES:-tiny small}"
JOBS="${JOBS:-4}"
SEED="${SEED:-1998}"
OBS_SWEEP="${OBS_SWEEP:-1}"
LOOPS_SWEEP="${LOOPS_SWEEP:-1}"
OBS_SCALE="${OBS_SCALE:-tiny}"
SETTLE_MS="${SETTLE_MS:-500}"

# First free BENCH_<date>[b-f].json: a same-day re-bench (before/after a
# perf change) lands beside the earlier file, and the letter suffix
# keeps `ls | sort` chronological.
default_out() {
    local base="BENCH_$(date +%F)" suffix
    for suffix in "" b c d e f; do
        if [ ! -e "$base$suffix.json" ]; then
            echo "$base$suffix.json"
            return
        fi
    done
    echo "too many trajectory files for $base" >&2
    return 1
}
OUT="${OUT:-$(default_out)}"

echo "==> cargo build --release (offline)"
cargo build --release --offline -p instrep-repro

BIN=target/release/instrep-repro
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for scale in $SCALES; do
    echo "==> bench: scale=$scale runs=$RUNS jobs=$JOBS seed=$SEED settle=${SETTLE_MS}ms"
    INSTREP_BENCH_SETTLE_MS="$SETTLE_MS" \
        "$BIN" --scale "$scale" --seed "$SEED" --jobs "$JOBS" --table 1 \
        --bench "$RUNS" --metrics-out "$TMP/$scale.json" >/dev/null
done

# Per-observer marginal cost: the split (oracle) tier benched whole,
# then once per observer with that observer disabled. The difference in
# measure-phase ns/event is what the observer costs on top of the other
# six — the number that says where fusion headroom is.
#
# One pass = the baseline plus the seven one-disabled configs, benched
# back to back; marginals are computed *within* each pass and the
# median across RUNS passes is reported. (Benching each config RUNS
# times sequentially would put minutes between baseline and deltas and
# fold this box's ±30% drift into every marginal; same-pass deltas
# mostly cancel it.)
if [ "$OBS_SWEEP" = 1 ]; then
    echo "==> observer-cost sweep: split tier, scale=$OBS_SCALE passes=$RUNS jobs=$JOBS"
    for pass in $(seq 1 "$RUNS"); do
        INSTREP_BENCH_SETTLE_MS=0 \
            "$BIN" --scale "$OBS_SCALE" --seed "$SEED" --jobs "$JOBS" --table 1 \
            --analysis split --bench 1 \
            --metrics-out "$TMP/obs-all-$pass.json" >/dev/null
        for obs in tracker reuse global local function predict classes; do
            INSTREP_BENCH_SETTLE_MS=0 \
                "$BIN" --scale "$OBS_SCALE" --seed "$SEED" --jobs "$JOBS" --table 1 \
                --analysis split --disable-observer "$obs" --bench 1 \
                --metrics-out "$TMP/obs-no-$obs-$pass.json" >/dev/null
        done
        echo "==> observer-cost sweep: pass $pass/$RUNS done"
    done
    python3 - "$TMP" "$OBS_SCALE" "$RUNS" "$JOBS" "$SEED" >"$TMP/obs-costs.json" <<'EOF'
import json
import statistics
import sys

tmp, scale, runs, jobs, seed = sys.argv[1:6]
OBSERVERS = ["tracker", "reuse", "global", "local", "function", "predict", "classes"]


def measure_ns(path):
    """Per-workload measure-phase ns/event from one bench summary."""
    out = {}
    for wl in json.load(open(path))["workloads"]:
        for ph in wl["phases"]:
            if ph["name"] == "measure" and ph["median_events_per_sec"] > 0:
                out[wl["name"]] = 1e9 / ph["median_events_per_sec"]
    return out


passes = range(1, int(runs) + 1)
base = [measure_ns(f"{tmp}/obs-all-{p}.json") for p in passes]
workloads = sorted(base[0], key=list(base[0]).index)
rows = []
for obs in OBSERVERS:
    without = [measure_ns(f"{tmp}/obs-no-{obs}-{p}.json") for p in passes]
    per = {
        w: round(statistics.median(b[w] - n[w] for b, n in zip(base, without)), 2)
        for w in workloads
        if all(w in n for n in without)
    }
    mean = round(sum(per.values()) / len(per), 2) if per else 0.0
    rows.append(
        {"name": obs, "mean_marginal_ns_per_event": mean, "marginal_ns_per_event": per}
    )
doc = {
    "schema_version": 1,
    "kind": "observer-costs",
    "scale": scale,
    "runs": int(runs),
    "jobs": int(jobs),
    "seed": int(seed),
    "baseline_ns_per_event": {
        w: round(statistics.median(b[w] for b in base), 2) for w in workloads
    },
    "observers": rows,
}
print(json.dumps(doc, indent=1))
EOF
fi

# Loop-nest profiler cost: the pipeline run back to back with the loop
# probe off and on, per pass. --bench refuses to combine with the loops
# exports, so these are single plain runs; the probe-on run writes a
# real --loops-out so the priced path is the shipping one. The marginal
# measure-phase ns/event is computed within each pass (same reasoning
# as the observer sweep: same-pass deltas cancel machine drift) and the
# median across RUNS passes is reported.
if [ "$LOOPS_SWEEP" = 1 ]; then
    echo "==> loops-cost sweep: probe off vs on, scale=$OBS_SCALE passes=$RUNS jobs=$JOBS"
    for pass in $(seq 1 "$RUNS"); do
        "$BIN" --scale "$OBS_SCALE" --seed "$SEED" --jobs "$JOBS" --table 1 \
            --metrics-out "$TMP/loops-off-$pass.json" >/dev/null
        "$BIN" --scale "$OBS_SCALE" --seed "$SEED" --jobs "$JOBS" --table 1 \
            --loops-out "$TMP/loops-profile-$pass.json" \
            --metrics-out "$TMP/loops-on-$pass.json" >/dev/null
        echo "==> loops-cost sweep: pass $pass/$RUNS done"
    done
    python3 - "$TMP" "$OBS_SCALE" "$RUNS" "$JOBS" "$SEED" >"$TMP/loops-costs.json" <<'EOF'
import json
import statistics
import sys

tmp, scale, runs, jobs, seed = sys.argv[1:6]


def measure_ns(path):
    """Per-workload measure-phase ns/event from one plain-run metrics doc."""
    out = {}
    for name, wl in ((w["name"], w) for w in json.load(open(path))["workloads"]):
        for ph in wl["phases"]:
            if ph["name"] == "measure" and ph["events_per_sec"] > 0:
                out[name] = 1e9 / ph["events_per_sec"]
    return out


passes = range(1, int(runs) + 1)
off = [measure_ns(f"{tmp}/loops-off-{p}.json") for p in passes]
on = [measure_ns(f"{tmp}/loops-on-{p}.json") for p in passes]
workloads = sorted(off[0], key=list(off[0]).index)
marginal = {
    w: round(statistics.median(b[w] - a[w] for a, b in zip(off, on)), 2)
    for w in workloads
    if all(w in b for b in on)
}
doc = {
    "schema_version": 1,
    "kind": "loops-cost",
    "scale": scale,
    "runs": int(runs),
    "jobs": int(jobs),
    "seed": int(seed),
    "baseline_ns_per_event": {
        w: round(statistics.median(a[w] for a in off), 2) for w in workloads
    },
    "probed_ns_per_event": {
        w: round(statistics.median(b[w] for b in on), 2) for w in workloads
    },
    "marginal_ns_per_event": marginal,
    "mean_marginal_ns_per_event": (
        round(sum(marginal.values()) / len(marginal), 2) if marginal else 0.0
    ),
}
print(json.dumps(doc, indent=1))
EOF
fi

{
    printf '{\n'
    printf '  "schema_version": 1,\n'
    printf '  "kind": "bench-trajectory",\n'
    printf '  "date": "%s",\n' "$(date +%F)"
    printf '  "entries": [\n'
    first=1
    for scale in $SCALES; do
        if [ "$first" -eq 0 ]; then printf ',\n'; fi
        first=0
        # Indent the per-scale summary; $(...) strips its trailing newline.
        printf '%s' "$(sed 's/^/    /' "$TMP/$scale.json")"
    done
    if [ -s "$TMP/obs-costs.json" ]; then
        printf ',\n%s' "$(sed 's/^/    /' "$TMP/obs-costs.json")"
    fi
    if [ -s "$TMP/loops-costs.json" ]; then
        printf ',\n%s' "$(sed 's/^/    /' "$TMP/loops-costs.json")"
    fi
    printf '\n  ]\n'
    printf '}\n'
} >"$OUT"

echo "wrote $OUT"
