#!/usr/bin/env bash
# Performance-trajectory benchmark. Runs the pinned workloads RUNS times
# per scale via `instrep-repro --bench` (which writes a median+IQR
# summary per scale) and wraps the per-scale summaries into one
# `BENCH_<date>.json` trajectory document at the repo root. Commit the
# file: successive entries across PRs chart the pipeline's throughput
# over time (see DESIGN.md for the schema and methodology).
#
# Modes:
#   scripts/bench.sh            run the benchmark and write BENCH_<date>.json
#   scripts/bench.sh --check    validate every committed BENCH_*.json
#                               (schema version + kind); non-zero on drift
#   scripts/bench.sh --concat   merge all BENCH_*.json, ordered by file
#                               name (dates sort chronologically), into one
#                               bench-history document on stdout
#
# Tunables (env): RUNS (default 3), SCALES ("tiny small"), JOBS (4),
# SEED (1998), OUT (BENCH_$(date +%F).json).
set -euo pipefail
cd "$(dirname "$0")/.."

# Trajectory files, oldest first (ISO dates in the name sort correctly).
trajectory_files() {
    ls BENCH_*.json 2>/dev/null | LC_ALL=C sort
}

check_trajectories() {
    local files status=0
    files="$(trajectory_files)"
    if [ -z "$files" ]; then
        echo "no BENCH_*.json trajectory files to check"
        return 0
    fi
    for f in $files; do
        if ! grep -q '"schema_version": 1,' "$f"; then
            echo "bench schema drift: expected schema_version 1 in $f" >&2
            status=1
        fi
        if ! grep -q '"kind": "bench-trajectory",' "$f"; then
            echo "bench schema drift: expected kind \"bench-trajectory\" in $f" >&2
            status=1
        fi
        if ! grep -q '"kind": "bench",' "$f"; then
            echo "bench schema drift: $f carries no per-scale bench summaries" >&2
            status=1
        fi
    done
    [ "$status" -eq 0 ] && echo "bench trajectories OK ($(echo "$files" | wc -l) file(s))"
    return "$status"
}

concat_trajectories() {
    local files n first=1
    files="$(trajectory_files)"
    if [ -z "$files" ]; then
        echo "no BENCH_*.json trajectory files to concatenate" >&2
        return 1
    fi
    n="$(echo "$files" | wc -l | tr -d ' ')"
    printf '{\n'
    printf '  "schema_version": 1,\n'
    printf '  "kind": "bench-history",\n'
    printf '  "files": %s,\n' "$n"
    printf '  "entries": [\n'
    for f in $files; do
        if [ "$first" -eq 0 ]; then printf ',\n'; fi
        first=0
        printf '%s' "$(sed 's/^/    /' "$f")"
    done
    printf '\n  ]\n'
    printf '}\n'
}

case "${1:-}" in
--check)
    check_trajectories
    exit
    ;;
--concat)
    concat_trajectories
    exit
    ;;
"") ;;
*)
    echo "usage: scripts/bench.sh [--check | --concat]" >&2
    exit 2
    ;;
esac

RUNS="${RUNS:-3}"
SCALES="${SCALES:-tiny small}"
JOBS="${JOBS:-4}"
SEED="${SEED:-1998}"
OUT="${OUT:-BENCH_$(date +%F).json}"

echo "==> cargo build --release (offline)"
cargo build --release --offline -p instrep-repro

BIN=target/release/instrep-repro
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for scale in $SCALES; do
    echo "==> bench: scale=$scale runs=$RUNS jobs=$JOBS seed=$SEED"
    "$BIN" --scale "$scale" --seed "$SEED" --jobs "$JOBS" --table 1 \
        --bench "$RUNS" --metrics-out "$TMP/$scale.json" >/dev/null
done

{
    printf '{\n'
    printf '  "schema_version": 1,\n'
    printf '  "kind": "bench-trajectory",\n'
    printf '  "date": "%s",\n' "$(date +%F)"
    printf '  "entries": [\n'
    first=1
    for scale in $SCALES; do
        if [ "$first" -eq 0 ]; then printf ',\n'; fi
        first=0
        # Indent the per-scale summary; $(...) strips its trailing newline.
        printf '%s' "$(sed 's/^/    /' "$TMP/$scale.json")"
    done
    printf '\n  ]\n'
    printf '}\n'
} >"$OUT"

echo "wrote $OUT"
