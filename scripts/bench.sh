#!/usr/bin/env bash
# Performance-trajectory benchmark. Runs the pinned workloads RUNS times
# per scale via `instrep-repro --bench` (which writes a median+IQR
# summary per scale) and wraps the per-scale summaries into one
# `BENCH_<date>.json` trajectory document at the repo root. Commit the
# file: successive entries across PRs chart the pipeline's throughput
# over time (see DESIGN.md for the schema and methodology).
#
# Tunables (env): RUNS (default 3), SCALES ("tiny small"), JOBS (4),
# SEED (1998), OUT (BENCH_$(date +%F).json).
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${RUNS:-3}"
SCALES="${SCALES:-tiny small}"
JOBS="${JOBS:-4}"
SEED="${SEED:-1998}"
OUT="${OUT:-BENCH_$(date +%F).json}"

echo "==> cargo build --release (offline)"
cargo build --release --offline -p instrep-repro

BIN=target/release/instrep-repro
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for scale in $SCALES; do
    echo "==> bench: scale=$scale runs=$RUNS jobs=$JOBS seed=$SEED"
    "$BIN" --scale "$scale" --seed "$SEED" --jobs "$JOBS" --table 1 \
        --bench "$RUNS" --metrics-out "$TMP/$scale.json" >/dev/null
done

{
    printf '{\n'
    printf '  "schema_version": 1,\n'
    printf '  "kind": "bench-trajectory",\n'
    printf '  "date": "%s",\n' "$(date +%F)"
    printf '  "entries": [\n'
    first=1
    for scale in $SCALES; do
        if [ "$first" -eq 0 ]; then printf ',\n'; fi
        first=0
        # Indent the per-scale summary; $(...) strips its trailing newline.
        printf '%s' "$(sed 's/^/    /' "$TMP/$scale.json")"
    done
    printf '\n  ]\n'
    printf '}\n'
} >"$OUT"

echo "wrote $OUT"
