#!/usr/bin/env bash
# Full local CI gate. Mirrors what the tier-1 check runs, plus lints.
# Everything is offline: the workspace has zero registry dependencies
# (see third_party/ for the in-tree proptest/criterion shims).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release (offline)"
cargo build --release --workspace --offline

echo "==> cargo test (offline)"
cargo test -q --workspace --offline

echo "==> cargo test --features proptest (property tests, offline)"
cargo test -q --workspace --offline --features proptest

echo "==> cargo test --features split-analysis (split oracle drives every report)"
# Flips AnalysisTier::default() to the free-standing observers, so the
# whole tier-1 suite — golden snapshots included — re-proves the oracle
# path end to end. (The later smoke steps rebuild the default-feature
# binary via the golden test, so this cannot leak into them.)
cargo test -q --workspace --offline --features split-analysis

echo "==> golden snapshots (byte-for-byte table output)"
cargo test -q -p instrep-repro --offline --test golden

echo "==> metrics smoke run (--metrics-out schema check)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
SMOKE="$SMOKE_DIR/metrics.json"
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --metrics-out "$SMOKE" >/dev/null
grep -q '"schema_version": 1,' "$SMOKE" || {
    echo "metrics schema drift: expected schema_version 1 in $SMOKE" >&2
    exit 1
}
grep -q '"kind": "metrics",' "$SMOKE" || {
    echo "metrics schema drift: expected kind \"metrics\" in $SMOKE" >&2
    exit 1
}

echo "==> trace + interval smoke run (schema and stdout-identity checks)"
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 >"$SMOKE_DIR/plain.txt"
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --trace-out "$SMOKE_DIR/trace.json" \
    --interval 1000 --interval-out "$SMOKE_DIR/series.jsonl" \
    >"$SMOKE_DIR/traced.txt"
grep -q '"schema_version": 1,' "$SMOKE_DIR/trace.json" || {
    echo "trace schema drift: expected schema_version 1 in trace.json" >&2
    exit 1
}
grep -q '"kind": "trace",' "$SMOKE_DIR/trace.json" || {
    echo "trace schema drift: expected kind \"trace\" in trace.json" >&2
    exit 1
}
head -1 "$SMOKE_DIR/series.jsonl" | grep -q '"kind": "intervals"' || {
    echo "interval schema drift: expected kind \"intervals\" in series.jsonl header" >&2
    exit 1
}
cmp -s "$SMOKE_DIR/plain.txt" "$SMOKE_DIR/traced.txt" || {
    echo "tracing perturbed table stdout (plain vs traced differ)" >&2
    exit 1
}

echo "==> profile smoke run (schema, folded hygiene, stdout-identity)"
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --profile-out "$SMOKE_DIR/profile.json" \
    --profile-folded "$SMOKE_DIR/profile.folded" \
    >"$SMOKE_DIR/profiled.txt"
grep -q '"schema_version": 1,' "$SMOKE_DIR/profile.json" || {
    echo "profile schema drift: expected schema_version 1 in profile.json" >&2
    exit 1
}
grep -q '"kind": "profile",' "$SMOKE_DIR/profile.json" || {
    echo "profile schema drift: expected kind \"profile\" in profile.json" >&2
    exit 1
}
test -s "$SMOKE_DIR/profile.folded" || {
    echo "folded stacks file is empty" >&2
    exit 1
}
# Collapsed-stack hygiene: every line is `stack count`, one space, no
# tabs or stray whitespace (flamegraph tools are picky about this).
grep -qP '\t| {2}|^ | $' "$SMOKE_DIR/profile.folded" && {
    echo "folded stacks contain stray whitespace" >&2
    exit 1
}
cmp -s "$SMOKE_DIR/plain.txt" "$SMOKE_DIR/profiled.txt" || {
    echo "profiling perturbed table stdout (plain vs profiled differ)" >&2
    exit 1
}
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --annotate compress >"$SMOKE_DIR/annotated.txt"
grep -q 'source-level repetition profile' "$SMOKE_DIR/annotated.txt" || {
    echo "--annotate produced no annotated source view" >&2
    exit 1
}

echo "==> loop-profiler smoke run (schema, folded hygiene, jobs/tier identity)"
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --loops-out "$SMOKE_DIR/loops.json" \
    --loops-folded "$SMOKE_DIR/loops.folded" >"$SMOKE_DIR/looped.txt"
grep -q '"schema_version": 1,' "$SMOKE_DIR/loops.json" || {
    echo "loops schema drift: expected schema_version 1 in loops.json" >&2
    exit 1
}
grep -q '"kind": "loops",' "$SMOKE_DIR/loops.json" || {
    echo "loops schema drift: expected kind \"loops\" in loops.json" >&2
    exit 1
}
test -s "$SMOKE_DIR/loops.folded" || {
    echo "loop-nest folded stacks file is empty" >&2
    exit 1
}
grep -qP '\t| {2}|^ | $' "$SMOKE_DIR/loops.folded" && {
    echo "loop-nest folded stacks contain stray whitespace" >&2
    exit 1
}
cmp -s "$SMOKE_DIR/plain.txt" "$SMOKE_DIR/looped.txt" || {
    echo "loop profiling perturbed table stdout (plain vs looped differ)" >&2
    exit 1
}
# The loop profile itself is part of the determinism contract: the JSON
# must be byte-identical at every --jobs count and under the split
# analysis tier, and neither run may move the table a byte.
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 1 --loops-out "$SMOKE_DIR/loops-j1.json" >"$SMOKE_DIR/looped-j1.txt"
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --analysis split --loops-out "$SMOKE_DIR/loops-split.json" \
    >"$SMOKE_DIR/looped-split.txt"
cmp -s "$SMOKE_DIR/plain.txt" "$SMOKE_DIR/looped-j1.txt" || {
    echo "loop profiling perturbed table stdout at --jobs 1" >&2
    exit 1
}
cmp -s "$SMOKE_DIR/plain.txt" "$SMOKE_DIR/looped-split.txt" || {
    echo "loop profiling perturbed table stdout under --analysis split" >&2
    exit 1
}
cmp -s "$SMOKE_DIR/loops.json" "$SMOKE_DIR/loops-j1.json" || {
    echo "loop profile differs between --jobs 2 and --jobs 1" >&2
    exit 1
}
cmp -s "$SMOKE_DIR/loops.json" "$SMOKE_DIR/loops-split.json" || {
    echo "loop profile differs between the fused and split analysis tiers" >&2
    exit 1
}

echo "==> analysis cache smoke run (cold populate, warm hit, poison catch)"
CACHE_DIR="$SMOKE_DIR/cache"
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --cache-dir "$CACHE_DIR" >"$SMOKE_DIR/cold.txt"
ls "$CACHE_DIR"/*.bin >/dev/null 2>&1 || {
    echo "cold --cache-dir run stored no cache entries" >&2
    exit 1
}
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --cache-dir "$CACHE_DIR" \
    --metrics-out "$SMOKE_DIR/warm-metrics.json" >"$SMOKE_DIR/warm.txt"
cmp -s "$SMOKE_DIR/plain.txt" "$SMOKE_DIR/cold.txt" || {
    echo "cold cache run perturbed table stdout (plain vs cold differ)" >&2
    exit 1
}
cmp -s "$SMOKE_DIR/plain.txt" "$SMOKE_DIR/warm.txt" || {
    echo "warm cache run perturbed table stdout (plain vs warm differ)" >&2
    exit 1
}
grep -q '"name": "cache"' "$SMOKE_DIR/warm-metrics.json" || {
    echo "warm cache run recorded no cache phase in metrics" >&2
    exit 1
}
grep -q '"name": "measure"' "$SMOKE_DIR/warm-metrics.json" && {
    echo "warm cache run still executed a measure phase (hit did not short-circuit)" >&2
    exit 1
}
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --cache-dir "$CACHE_DIR" --cache-verify >/dev/null || {
    echo "--cache-verify rejected an honest cache entry" >&2
    exit 1
}
# Truncate every entry: damaged files must degrade to a silent miss.
for f in "$CACHE_DIR"/*.bin; do head -c 16 "$f" >"$f.cut" && mv "$f.cut" "$f"; done
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --cache-dir "$CACHE_DIR" >"$SMOKE_DIR/repaired.txt"
cmp -s "$SMOKE_DIR/plain.txt" "$SMOKE_DIR/repaired.txt" || {
    echo "truncated cache entries changed table stdout" >&2
    exit 1
}
# Poison an entry through the codec (wrong counters, valid checksum):
# a plain run serves it, --cache-verify must catch it.
python3 - "$CACHE_DIR" <<'EOF'
import glob, struct, sys
MASK = (1 << 64) - 1
K = 0x9E37_79B9_7F4A_7C15  # crates/core/src/fxhash.rs
def fxhash64(data):
    h = 0
    full = len(data) - len(data) % 8
    words = [w for (w,) in struct.iter_unpack("<Q", data[:full])]
    rest = data[full:]
    if rest:
        tail = bytearray(8)
        tail[: len(rest)] = rest
        tail[7] = len(rest)
        words.append(struct.unpack("<Q", bytes(tail))[0])
    for w in words:
        h = (((h << 5 | h >> 59) & MASK) ^ w) * K & MASK
    return h
[path] = glob.glob(sys.argv[1] + "/*.bin")
raw = bytearray(open(path, "rb").read())
raw[36 + 2] ^= 0xFF
raw[-8:] = struct.pack("<Q", fxhash64(bytes(raw[36:-8])))
open(path, "wb").write(raw)
EOF
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --cache-dir "$CACHE_DIR" --cache-verify \
    >/dev/null 2>"$SMOKE_DIR/verify.err" && {
    echo "--cache-verify accepted a poisoned cache entry" >&2
    exit 1
}
grep -q 'cache verify failed for compress' "$SMOKE_DIR/verify.err" || {
    echo "--cache-verify failed without naming the poisoned workload" >&2
    exit 1
}

echo "==> interpreter-tier differential smoke (fast vs legacy, both feature configs)"
# The trap-corpus differential under the default feature set...
cargo test -q -p instrep-sim --offline --test differential
# ...and again with `legacy-interp` flipping the default tier, so both
# feature configurations keep both loops honest.
cargo test -q -p instrep-sim --offline --features legacy-interp --test differential
# End to end: --interp legacy must print byte-identical tables.
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --interp legacy >"$SMOKE_DIR/legacy-interp.txt"
cmp -s "$SMOKE_DIR/plain.txt" "$SMOKE_DIR/legacy-interp.txt" || {
    echo "--interp legacy changed table stdout (tiers diverge)" >&2
    exit 1
}

echo "==> analysis-tier differential smoke (split oracle vs fused hot row)"
# End to end: --analysis split must print byte-identical tables to the
# default fused tier — the acceptance bar for the observer fusion.
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --analysis split >"$SMOKE_DIR/split-analysis.txt"
cmp -s "$SMOKE_DIR/plain.txt" "$SMOKE_DIR/split-analysis.txt" || {
    echo "--analysis split changed table stdout (analysis tiers diverge)" >&2
    exit 1
}

echo "==> telemetry smoke run (heartbeats, exposition, stdout-identity)"
# The full telemetry stack on, at two jobs counts: table stdout must not
# move a byte, the heartbeat stream must carry a schema-v1 header plus
# at least one beat, and the exposition file must be Prometheus-shaped.
for JOBS in 1 4; do
    target/debug/instrep-repro --scale tiny --only compress --table 1 \
        --jobs "$JOBS" --heartbeat-out "$SMOKE_DIR/hb$JOBS.jsonl" \
        --heartbeat-ms 10 --telemetry-out "$SMOKE_DIR/telem$JOBS.txt" \
        --progress >"$SMOKE_DIR/telemetry$JOBS.txt" 2>/dev/null
    cmp -s "$SMOKE_DIR/plain.txt" "$SMOKE_DIR/telemetry$JOBS.txt" || {
        echo "telemetry outputs perturbed table stdout at --jobs $JOBS" >&2
        exit 1
    }
done
head -1 "$SMOKE_DIR/hb1.jsonl" | grep -q '"kind": "heartbeats"' || {
    echo "heartbeat schema drift: expected kind \"heartbeats\" in the header" >&2
    exit 1
}
head -1 "$SMOKE_DIR/hb1.jsonl" | grep -q '"schema_version": 1' || {
    echo "heartbeat schema drift: expected schema_version 1 in the header" >&2
    exit 1
}
BEATS=$(grep -c '"kind": "heartbeat"' "$SMOKE_DIR/hb1.jsonl" || true)
[ "$BEATS" -ge 1 ] || {
    echo "heartbeat stream carried no beats (got $BEATS)" >&2
    exit 1
}
grep -q '^instrep_' "$SMOKE_DIR/telem1.txt" || {
    echo "telemetry exposition has no instrep_ metrics" >&2
    exit 1
}
grep -q '^# TYPE instrep_' "$SMOKE_DIR/telem1.txt" || {
    echo "telemetry exposition has no # TYPE lines" >&2
    exit 1
}

echo "==> legacy entry-point sweep (deleted analyze* shims must stay deleted)"
# The pre-Session analyze* entry points and ProbeConfig are gone; this
# gate keeps them from reappearing anywhere, caller or definition.
# crates/minicc is excluded: its sema::analyze is an unrelated
# compiler pass that predates (and outlives) the pipeline shims.
LEGACY=$(grep -rn --include='*.rs' -P \
    '\banalyze(_many(_with_metrics|_instrumented)?|_with_(metrics|probes))?\s*\(|\bProbeConfig\b' \
    crates src tests examples benches 2>/dev/null |
    grep -v '^crates/minicc/' || true)
if [ -n "$LEGACY" ]; then
    echo "deleted analyze*/ProbeConfig entry points referenced again:" >&2
    echo "$LEGACY" >&2
    exit 1
fi

echo "==> service smoke (daemon protocol, cache reuse, backpressure, graceful drain)"
cargo build -q --offline -p instrep-serve
cargo build -q --offline --example instrep_client
SERVE_SOCK="$SMOKE_DIR/serve.sock"
target/debug/instrep-serve --socket "$SERVE_SOCK" \
    --cache-dir "$SMOKE_DIR/serve-cache" --workers 1 --queue 1 \
    --max-request-bytes 4096 --telemetry-out "$SMOKE_DIR/serve-telem.txt" \
    2>"$SMOKE_DIR/serve.log" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
for _ in $(seq 50); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
[ -S "$SERVE_SOCK" ] || {
    echo "daemon never bound $SERVE_SOCK" >&2
    exit 1
}
# Cold then warm from separate clients: the second request must hit the
# shared cache and the canonical report objects must be byte-identical.
target/debug/examples/instrep_client --socket "$SERVE_SOCK" --workload compress \
    --report-only >"$SMOKE_DIR/serve-cold.json"
target/debug/examples/instrep_client --socket "$SERVE_SOCK" --workload compress \
    >"$SMOKE_DIR/serve-warm.json" 2>"$SMOKE_DIR/serve-warm.err"
grep -q '^cache: hit$' "$SMOKE_DIR/serve-warm.err" || {
    echo "warm daemon request did not hit the shared cache" >&2
    exit 1
}
cmp -s "$SMOKE_DIR/serve-cold.json" "$SMOKE_DIR/serve-warm.json" || {
    echo "cold and warm daemon reports are not byte-identical" >&2
    exit 1
}
# Protocol edges over a raw socket: malformed JSON, an unknown schema
# version (rejected by name), an oversized line, and a full queue.
python3 - "$SERVE_SOCK" <<'EOF'
import json, socket, sys, time

SOCK = sys.argv[1]
SLOW = ('{"schema_version":1,"id":%d,"source":'
        '"int main() { int i; int s = 0; '
        'for (i = 0; i < 100000000; i++) s = s + i; return 0; }",'
        '"skip":0,"window":5000000}')

def connect():
    s = socket.socket(socket.AF_UNIX)
    s.connect(SOCK)
    return s

def read_reply(s):
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = s.recv(65536)
        if not chunk:
            raise SystemExit("daemon closed without replying")
        buf += chunk
    return json.loads(buf.decode())

def ask(line):
    s = connect()
    s.sendall(line.encode() + b"\n")
    reply = read_reply(s)
    s.close()
    return reply

r = ask("{this is not json")
assert r["ok"] is False and r["error"] == "bad_request", r
r = ask(json.dumps({"schema_version": 99, "id": 5, "workload": "compress"}))
assert r["ok"] is False and r["error"] == "unsupported_version", r
assert "99" in r["message"] and "1" in r["message"], r
r = ask(json.dumps({"schema_version": 1, "id": 6, "source": "x" * 8192}))
assert r["ok"] is False and r["error"] == "oversized", r

# Backpressure: worker busy + the one queue slot taken => reject #3
# with a retry hint, while the two admitted requests still finish.
a, b = connect(), connect()
a.sendall((SLOW % 1).encode() + b"\n")
time.sleep(0.4)
b.sendall((SLOW % 2).encode() + b"\n")
time.sleep(0.2)
r = ask(SLOW % 3)
assert r["ok"] is False and r["error"] == "overloaded", r
assert r.get("retry_after_ms", 0) > 0, r
for s, rid in ((a, 1), (b, 2)):
    r = read_reply(s)
    assert r["ok"] is True and r["id"] == rid, r
    s.close()
print("service protocol smoke OK")
EOF
# Graceful drain: SIGTERM must exit 0 and leave the exposition behind.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || {
    echo "daemon exited non-zero on SIGTERM (no graceful drain)" >&2
    exit 1
}
SERVE_PID=""
grep -q '^instrep_serve_requests ' "$SMOKE_DIR/serve-telem.txt" || {
    echo "daemon exposition is missing serve_* counters" >&2
    exit 1
}
grep -q '^instrep_serve_rejected_overload 1$' "$SMOKE_DIR/serve-telem.txt" || {
    echo "daemon exposition did not count the overload rejection" >&2
    exit 1
}
grep -q '^instrep_cache_hit ' "$SMOKE_DIR/serve-telem.txt" || {
    echo "daemon exposition is missing shared-cache counters" >&2
    exit 1
}

echo "==> bench trajectory check (scripts/bench.sh --check)"
scripts/bench.sh --check

echo "CI OK"
