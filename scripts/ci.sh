#!/usr/bin/env bash
# Full local CI gate. Mirrors what the tier-1 check runs, plus lints.
# Everything is offline: the workspace has zero registry dependencies
# (see third_party/ for the in-tree proptest/criterion shims).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release (offline)"
cargo build --release --workspace --offline

echo "==> cargo test (offline)"
cargo test -q --workspace --offline

echo "==> cargo test --features proptest (property tests, offline)"
cargo test -q --workspace --offline --features proptest

echo "CI OK"
