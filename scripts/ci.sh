#!/usr/bin/env bash
# Full local CI gate. Mirrors what the tier-1 check runs, plus lints.
# Everything is offline: the workspace has zero registry dependencies
# (see third_party/ for the in-tree proptest/criterion shims).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release (offline)"
cargo build --release --workspace --offline

echo "==> cargo test (offline)"
cargo test -q --workspace --offline

echo "==> cargo test --features proptest (property tests, offline)"
cargo test -q --workspace --offline --features proptest

echo "==> golden snapshots (byte-for-byte table output)"
cargo test -q -p instrep-repro --offline --test golden

echo "==> metrics smoke run (--metrics-out schema check)"
SMOKE="$(mktemp)"
trap 'rm -f "$SMOKE"' EXIT
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --metrics-out "$SMOKE" >/dev/null
grep -q '"schema_version": 1,' "$SMOKE" || {
    echo "metrics schema drift: expected schema_version 1 in $SMOKE" >&2
    exit 1
}
grep -q '"kind": "metrics",' "$SMOKE" || {
    echo "metrics schema drift: expected kind \"metrics\" in $SMOKE" >&2
    exit 1
}

echo "CI OK"
