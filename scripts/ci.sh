#!/usr/bin/env bash
# Full local CI gate. Mirrors what the tier-1 check runs, plus lints.
# Everything is offline: the workspace has zero registry dependencies
# (see third_party/ for the in-tree proptest/criterion shims).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release (offline)"
cargo build --release --workspace --offline

echo "==> cargo test (offline)"
cargo test -q --workspace --offline

echo "==> cargo test --features proptest (property tests, offline)"
cargo test -q --workspace --offline --features proptest

echo "==> golden snapshots (byte-for-byte table output)"
cargo test -q -p instrep-repro --offline --test golden

echo "==> metrics smoke run (--metrics-out schema check)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
SMOKE="$SMOKE_DIR/metrics.json"
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --metrics-out "$SMOKE" >/dev/null
grep -q '"schema_version": 1,' "$SMOKE" || {
    echo "metrics schema drift: expected schema_version 1 in $SMOKE" >&2
    exit 1
}
grep -q '"kind": "metrics",' "$SMOKE" || {
    echo "metrics schema drift: expected kind \"metrics\" in $SMOKE" >&2
    exit 1
}

echo "==> trace + interval smoke run (schema and stdout-identity checks)"
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 >"$SMOKE_DIR/plain.txt"
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --trace-out "$SMOKE_DIR/trace.json" \
    --interval 1000 --interval-out "$SMOKE_DIR/series.jsonl" \
    >"$SMOKE_DIR/traced.txt"
grep -q '"schema_version": 1,' "$SMOKE_DIR/trace.json" || {
    echo "trace schema drift: expected schema_version 1 in trace.json" >&2
    exit 1
}
grep -q '"kind": "trace",' "$SMOKE_DIR/trace.json" || {
    echo "trace schema drift: expected kind \"trace\" in trace.json" >&2
    exit 1
}
head -1 "$SMOKE_DIR/series.jsonl" | grep -q '"kind": "intervals"' || {
    echo "interval schema drift: expected kind \"intervals\" in series.jsonl header" >&2
    exit 1
}
cmp -s "$SMOKE_DIR/plain.txt" "$SMOKE_DIR/traced.txt" || {
    echo "tracing perturbed table stdout (plain vs traced differ)" >&2
    exit 1
}

echo "==> profile smoke run (schema, folded hygiene, stdout-identity)"
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --profile-out "$SMOKE_DIR/profile.json" \
    --profile-folded "$SMOKE_DIR/profile.folded" \
    >"$SMOKE_DIR/profiled.txt"
grep -q '"schema_version": 1,' "$SMOKE_DIR/profile.json" || {
    echo "profile schema drift: expected schema_version 1 in profile.json" >&2
    exit 1
}
grep -q '"kind": "profile",' "$SMOKE_DIR/profile.json" || {
    echo "profile schema drift: expected kind \"profile\" in profile.json" >&2
    exit 1
}
test -s "$SMOKE_DIR/profile.folded" || {
    echo "folded stacks file is empty" >&2
    exit 1
}
# Collapsed-stack hygiene: every line is `stack count`, one space, no
# tabs or stray whitespace (flamegraph tools are picky about this).
grep -qP '\t| {2}|^ | $' "$SMOKE_DIR/profile.folded" && {
    echo "folded stacks contain stray whitespace" >&2
    exit 1
}
cmp -s "$SMOKE_DIR/plain.txt" "$SMOKE_DIR/profiled.txt" || {
    echo "profiling perturbed table stdout (plain vs profiled differ)" >&2
    exit 1
}
target/debug/instrep-repro --scale tiny --only compress --table 1 \
    --jobs 2 --annotate compress >"$SMOKE_DIR/annotated.txt"
grep -q 'source-level repetition profile' "$SMOKE_DIR/annotated.txt" || {
    echo "--annotate produced no annotated source view" >&2
    exit 1
}

echo "==> bench trajectory check (scripts/bench.sh --check)"
scripts/bench.sh --check

echo "CI OK"
