//! The reproduction contract: the paper's qualitative findings must hold
//! on our workload suite. Absolute numbers differ (different compiler,
//! inputs, and window sizes); these tests pin the *shapes* —
//! who is high, who is low, what dominates.
//!
//! Runs every SPEC-analog workload once at test scale and checks each
//! section of the paper against the shared reports. The loop-diversity
//! kernels (`interp`, `stencil` — DESIGN.md §16.3) are excluded: they
//! deliberately sit outside the paper's envelope (flat dispatch or
//! call-free nest code with no prologue/epilogue traffic), and their
//! contract lives in the loop-profiler suites instead.

use std::collections::HashMap;
use std::sync::OnceLock;

use instrep::core::{AnalysisConfig, GlobalTag, LocalCat, Session, WorkloadReport};
use instrep::workloads::{all, Scale, Workload};

/// The eight SPEC-'95 analogs the paper's shape claims are about.
fn spec_analogs() -> impl Iterator<Item = Workload> {
    all().into_iter().filter(|w| !matches!(w.name, "interp" | "stencil"))
}

/// One uninstrumented run through the unified builder.
fn run_report(
    image: &instrep::asm::Image,
    input: Vec<u8>,
    cfg: &AnalysisConfig,
) -> Result<WorkloadReport, instrep::sim::SimError> {
    Session::new(*cfg).run_one(image, input).map(|ir| ir.report)
}

fn reports() -> &'static HashMap<&'static str, WorkloadReport> {
    static REPORTS: OnceLock<HashMap<&'static str, WorkloadReport>> = OnceLock::new();
    REPORTS.get_or_init(|| {
        let cfg = AnalysisConfig { skip: 20_000, window: 400_000, ..AnalysisConfig::default() };
        spec_analogs()
            .map(|wl| {
                let image = wl.build().expect("workload builds");
                let input = wl.input(Scale::Tiny, 1998);
                (wl.name, run_report(&image, input, &cfg).expect("workload analyzes"))
            })
            .collect()
    })
}

#[test]
fn table1_most_instructions_repeat() {
    // Paper: 56.9% (compress) .. 98.8% (m88ksim) of dynamic instructions
    // repeat; most of the executed static instructions repeat.
    for (name, r) in reports() {
        assert!(
            r.repetition_rate() > 0.55,
            "{name}: repetition rate {:.3} too low",
            r.repetition_rate()
        );
        assert!(
            r.static_repeated_rate() > 0.5,
            "{name}: static repeated rate {:.3}",
            r.static_repeated_rate()
        );
    }
    // m88ksim is the most repetitive benchmark in the suite.
    let m88k = reports()["m88ksim"].repetition_rate();
    assert!(m88k > 0.9, "m88ksim rate {m88k:.3}");
    for (name, r) in reports() {
        assert!(
            r.repetition_rate() <= m88k + 0.05,
            "{name} ({:.3}) should not dwarf m88ksim ({m88k:.3})",
            r.repetition_rate()
        );
    }
    // compress is at the low end (paper: lowest by a wide margin).
    let compress = reports()["compress"].repetition_rate();
    let min = reports().values().map(|r| r.repetition_rate()).fold(f64::MAX, f64::min);
    assert!(
        compress <= min + 0.1,
        "compress ({compress:.3}) should be near the minimum ({min:.3})"
    );
}

#[test]
fn figure1_repetition_is_concentrated() {
    // Paper: <20% of repeated static instructions cover >90% of the
    // repetition (m88ksim excepted at 56%). That tail statistic needs
    // SPEC-sized static footprints (14k-300k instructions); our programs
    // have ~1k, so nearly every repeated static is hot and the 90% point
    // flattens. The *concentration shape* survives at the 50%/75%
    // points: a small head of instructions carries most repetition.
    for (name, r) in reports() {
        let at50 = r.static_coverage.items_needed(0.5);
        let at75 = r.static_coverage.items_needed(0.75);
        assert!(at50 < 0.30, "{name}: needs {:.1}% of static insns for 50%", at50 * 100.0);
        assert!(at75 < 0.55, "{name}: needs {:.1}% of static insns for 75%", at75 * 100.0);
        // And the curve is genuinely concave: the first half of the
        // weight needs far fewer instructions than the second.
        let at100 = r.static_coverage.items_needed(1.0);
        assert!(at50 < at100 * 0.55, "{name}: no concentration ({at50:.2} vs {at100:.2})");
    }
}

#[test]
fn figure3_multi_instance_instructions_contribute() {
    // Paper: repetition is NOT limited to single-instance instructions;
    // buckets beyond "1" carry substantial weight.
    for (name, r) in reports() {
        let h = r.instance_histogram;
        let multi: f64 = h[1..].iter().sum();
        assert!(multi > 0.3, "{name}: multi-instance share {multi:.3}");
        let sum: f64 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "{name}: histogram sums to {sum}");
    }
}

#[test]
fn figure4_instances_are_concentrated_too() {
    // Paper: <30% of unique repeatable instances cover 75% of repetition
    // in most cases. Allow slack for the small window.
    for (name, r) in reports() {
        let needed = r.instance_coverage.items_needed(0.75);
        assert!(needed < 0.5, "{name}: needs {:.1}% of instances for 75%", needed * 100.0);
    }
}

#[test]
fn table2_instances_repeat_many_times() {
    // Paper Table 2: average repeats range from 36 (gcc) to 13232
    // (m88ksim). Shape: every workload's URIs repeat multiple times, and
    // m88ksim's average is the highest.
    for (name, r) in reports() {
        assert!(r.avg_repeats > 2.0, "{name}: avg repeats {:.1}", r.avg_repeats);
        assert!(r.unique_repeatable > 100, "{name}: {} URIs", r.unique_repeatable);
    }
    let m88k = reports()["m88ksim"].avg_repeats;
    let max = reports().values().map(|r| r.avg_repeats).fold(0.0f64, f64::max);
    assert!(m88k >= max * 0.5, "m88ksim avg repeats {m88k:.0} should be near the top ({max:.0})");
}

#[test]
fn table3_computation_is_mostly_hardwired() {
    // Paper: program internals dominate; external input is a minority
    // source everywhere; go has (almost) no external input at all.
    for (name, r) in reports() {
        let internals = r.global.overall_share(GlobalTag::Internal)
            + r.global.overall_share(GlobalTag::GlobalInit);
        assert!(internals > 0.35, "{name}: internal+init share {internals:.3}");
        assert!(r.global.overall_share(GlobalTag::Uninit) < 0.05, "{name}: uninit share too high");
    }
    let go_ext = reports()["go"].global.overall_share(GlobalTag::External);
    assert!(go_ext < 0.05, "go external share {go_ext:.3} (paper: 0.0)");
    // Repetition mirrors the overall breakdown: internal slices dominate
    // repeated instructions too.
    for (name, r) in reports() {
        let internals = r.global.repeated_share(GlobalTag::Internal)
            + r.global.repeated_share(GlobalTag::GlobalInit);
        assert!(internals > 0.35, "{name}: repeated internal share {internals:.3}");
    }
}

#[test]
fn table4_arguments_repeat_massively() {
    // Paper: 59%..98% of calls have all arguments repeated; no-argument
    // repetition is a small minority (max 15.1%, li). go warms up
    // slowest (its tuple space is board positions), so it gets a lower
    // floor at this window size; at Small scale it reaches ~90%.
    let mut above_half = 0;
    for (name, r) in reports() {
        let floor = if *name == "go" { 0.3 } else { 0.45 };
        assert!(r.all_arg_rate > floor, "{name}: all-arg rate {:.3}", r.all_arg_rate);
        assert!(r.no_arg_rate < 0.4, "{name}: no-arg rate {:.3}", r.no_arg_rate);
        assert!(r.all_arg_rate > r.no_arg_rate, "{name}: inverted argument repetition");
        assert!(r.dynamic_calls > 100, "{name}: only {} calls", r.dynamic_calls);
        if r.all_arg_rate > 0.5 {
            above_half += 1;
        }
    }
    assert!(above_half >= 6, "all-arg repetition should dominate the suite");
}

#[test]
fn tables5_6_prologue_epilogue_matter() {
    // Paper: prologue+epilogue are significant (up to 24.8% in vortex)
    // and symmetric; most repetition falls on argument/global/heap/
    // internal slices.
    for (name, r) in reports() {
        let pe =
            r.local.overall_share(LocalCat::Prologue) + r.local.overall_share(LocalCat::Epilogue);
        assert!(pe > 0.02, "{name}: P/E share {pe:.3}");
        assert!(pe < 0.45, "{name}: P/E share {pe:.3} absurdly high");
        let p = r.local.overall[LocalCat::Prologue as usize] as f64;
        let e = r.local.overall[LocalCat::Epilogue as usize] as f64;
        assert!((p - e).abs() / p.max(1.0) < 0.1, "{name}: prologue/epilogue asymmetric");
    }
    // vortex and li are the call-heaviest: their P/E share tops the suite
    // (paper: vortex 24.8%, li 18.95%).
    let vortex_pe = reports()["vortex"].local.overall_share(LocalCat::Prologue);
    let ijpeg_pe = reports()["ijpeg"].local.overall_share(LocalCat::Prologue);
    assert!(vortex_pe > ijpeg_pe, "vortex should out-prologue ijpeg");
}

#[test]
fn table7_overhead_categories_always_repeat() {
    // Paper: glb_addr_calc and return propensities are ~100%.
    for (name, r) in reports() {
        for cat in [LocalCat::GlbAddrCalc, LocalCat::Return] {
            let p = r.local.propensity(cat);
            if r.local.overall[cat as usize] > 100 {
                assert!(p > 0.9, "{name}: {} propensity {p:.3}", cat.label());
            }
        }
    }
}

#[test]
fn table8_memoizable_functions_are_rare() {
    // Paper: at most 7.8% of calls (m88ksim) are side-effect- and
    // implicit-input-free; most benchmarks sit at 0.0%.
    for (name, r) in reports() {
        assert!(r.pure_rate < 0.15, "{name}: pure rate {:.3}", r.pure_rate);
    }
    let zeroes = reports().values().filter(|r| r.pure_rate < 0.01).count();
    assert!(zeroes >= 4, "most workloads should have ~0% memoizable calls, got {zeroes}/8");
}

#[test]
fn figure5_specialization_coverage_is_partial() {
    // Paper: even 5-way specialization covers under 50% of all-arg
    // repetition for all but one benchmark. Check monotonicity and that
    // coverage stays partial for the majority.
    let mut below_60 = 0;
    for (name, r) in reports() {
        let c = &r.argset_coverage;
        assert_eq!(c.len(), 5, "{name}");
        for w in c.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "{name}: coverage not monotone");
        }
        if c[4] < 0.6 {
            below_60 += 1;
        }
    }
    assert!(below_60 >= 4, "top-5 argument sets should leave most workloads <60% covered");
}

#[test]
fn figure6_load_values_are_clustered() {
    // Paper: the most frequent value covers 18..71% of global-load
    // repetition. Check monotone growth and a meaningful k=1 share.
    for (name, r) in reports() {
        let c = &r.load_value_coverage;
        assert_eq!(c.len(), 5);
        for w in c.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "{name}: coverage not monotone");
        }
        assert!(c[0] > 0.05, "{name}: top value covers only {:.3}", c[0]);
        assert!(c[0] < 1.0 - 1e-12 || c[4] >= c[0], "{name}");
    }
}

#[test]
fn table9_few_functions_dominate_prologue_repetition() {
    // Paper: top-5 functions cover 17%..100% of P/E repetition.
    for (name, r) in reports() {
        assert!(!r.prologue_top.is_empty(), "{name}: no prologue contributors");
        assert!(
            r.prologue_coverage > 0.15,
            "{name}: top-5 P/E coverage {:.3}",
            r.prologue_coverage
        );
        // Sizes are real static sizes.
        for (func, size, reps) in &r.prologue_top {
            assert!(*size > 0, "{name}: {func} has zero size");
            assert!(*reps > 0);
        }
    }
}

#[test]
fn table10_reuse_buffer_captures_much_not_all() {
    // Paper: the 8K/4-way buffer captures 45.8%..74.9% of repetition —
    // substantial but clearly short of everything ("room for
    // improvement").
    for (name, r) in reports() {
        let cap = r.reuse.repeated_capture_rate();
        assert!(cap > 0.3, "{name}: capture {cap:.3}");
        assert!(cap < 0.98, "{name}: capture {cap:.3} suspiciously perfect");
        assert!(r.reuse.hit_rate() <= r.repetition_rate() + 0.02, "{name}");
    }
}

#[test]
fn section3_repetition_is_input_insensitive() {
    // Paper §3: "We ran similar experiments using other program inputs
    // ... and found similar trends with the second set of inputs."
    let cfg = AnalysisConfig { skip: 20_000, window: 250_000, ..AnalysisConfig::default() };
    for wl in spec_analogs() {
        let image = wl.build().expect("workload builds");
        let a = run_report(&image, wl.input(Scale::Tiny, 1998), &cfg).expect("seed A analyzes");
        let b = run_report(&image, wl.input(Scale::Tiny, 424242), &cfg).expect("seed B analyzes");
        let delta = (a.repetition_rate() - b.repetition_rate()).abs();
        assert!(
            delta < 0.08,
            "{}: repetition rate moved {:.3} across inputs ({:.3} vs {:.3})",
            wl.name,
            delta,
            a.repetition_rate(),
            b.repetition_rate()
        );
        // The dominant global source category is also stable.
        let dom_a = GlobalTag::ALL
            .into_iter()
            .max_by(|x, y| a.global.overall_share(*x).total_cmp(&a.global.overall_share(*y)))
            .unwrap();
        let dom_b = GlobalTag::ALL
            .into_iter()
            .max_by(|x, y| b.global.overall_share(*x).total_cmp(&b.global.overall_share(*y)))
            .unwrap();
        assert_eq!(dom_a, dom_b, "{}: dominant source category flipped", wl.name);
    }
}
