//! Cross-crate integration: MiniC source through the assembler and
//! simulator into every analysis, checking the invariants that tie the
//! crates together.

use instrep::core::{AnalysisConfig, GlobalTag, LocalCat, Session, WorkloadReport};
use instrep::isa::abi;
use instrep::minicc::build;
use instrep::sim::{Machine, RunOutcome};

/// One uninstrumented run through the unified builder.
fn run_report(image: &instrep::asm::Image, cfg: &AnalysisConfig) -> WorkloadReport {
    Session::new(*cfg).run_one(image, Vec::new()).expect("workload runs").report
}

const PROGRAM: &str = r#"
    int table[32] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3,
                     2, 3, 8, 4, 6, 2, 6, 4, 3, 3, 8, 3, 2, 7, 9, 5};
    char msg[16] = "checksum:";

    int lookup(int i) { return table[i & 31]; }

    int mix(int a, int b) { return (a * 31 + b) & 0xffff; }

    int main() {
        int acc = 0;
        int i;
        for (i = 0; i < 3000; i++) {
            acc = mix(acc, lookup(i));
        }
        write(msg, 9);
        write_int(acc);
        return acc & 0xff;
    }
"#;

/// The shared prelude from the workloads crate provides read_int etc.
fn build_with_prelude(src: &str) -> instrep::asm::Image {
    let mut full = String::from(instrep::workloads::PRELUDE);
    full.push_str(src);
    build(&full).expect("program builds")
}

#[test]
fn compile_assemble_run_analyze() {
    let image = build_with_prelude(PROGRAM);
    // Compiled artifacts carry metadata for every function incl. runtime.
    for f in ["main", "lookup", "mix", "__start", "read", "write", "sbrk", "exit"] {
        assert!(image.funcs.iter().any(|m| m.name == f), "missing func meta for {f}");
    }
    // Initialized globals are recorded for the global analysis.
    assert!(image.is_initialized(image.symbols.get("table").unwrap()));
    assert!(image.is_initialized(image.symbols.get("msg").unwrap()));

    let report = run_report(&image, &AnalysisConfig::default());
    assert!(matches!(report.outcome, RunOutcome::Exited(_)));

    // --- cross-analysis consistency invariants ---
    // Every analysis counted exactly the same instruction stream.
    assert_eq!(report.global.total(), report.dynamic_total);
    assert_eq!(report.local.total(), report.dynamic_total);
    assert_eq!(report.reuse.total, report.dynamic_total);
    assert_eq!(report.reuse.repeated_total, report.dynamic_repeated);
    // Coverage curves account for every repetition.
    assert_eq!(report.static_coverage.total(), report.dynamic_repeated);
    assert_eq!(report.instance_coverage.total(), report.dynamic_repeated);
    // Repeated cannot exceed totals anywhere.
    for tag in GlobalTag::ALL {
        let t = tag as usize;
        assert!(report.global.repeated[t] <= report.global.overall[t]);
    }
    for cat in LocalCat::ALL {
        let c = cat as usize;
        assert!(report.local.repeated[c] <= report.local.overall[c]);
    }
    // Reuse hits can never exceed repetition-classified instructions by
    // construction of the tracker-fed pipeline.
    assert!(report.reuse.repeated_hits <= report.reuse.hits);
    assert!(report.reuse.repeated_hits <= report.dynamic_repeated);

    // --- semantic expectations for this program ---
    // The loop control, lookup() calls, and call overhead repeat; the
    // mix() accumulator chain never does (acc changes every iteration).
    assert!(report.repetition_rate() > 0.35, "rate {}", report.repetition_rate());
    assert!(report.repetition_rate() < 0.75, "rate {}", report.repetition_rate());
    // lookup+mix are called 3000 times each.
    assert!(report.dynamic_calls >= 6000);
    // Global-init data flows: the table is the program's data source.
    assert!(report.global.overall[GlobalTag::GlobalInit as usize] > 0);
    // Prologue and epilogue balance.
    assert_eq!(
        report.local.overall[LocalCat::Prologue as usize],
        report.local.overall[LocalCat::Epilogue as usize],
    );
}

#[test]
fn analysis_is_deterministic() {
    let image = build_with_prelude(PROGRAM);
    let a = run_report(&image, &AnalysisConfig::default());
    let b = run_report(&image, &AnalysisConfig::default());
    assert_eq!(a.dynamic_total, b.dynamic_total);
    assert_eq!(a.dynamic_repeated, b.dynamic_repeated);
    assert_eq!(a.global, b.global);
    assert_eq!(a.local, b.local);
    assert_eq!(a.reuse, b.reuse);
    assert_eq!(a.unique_repeatable, b.unique_repeatable);
}

#[test]
fn hand_written_assembly_through_the_stack() {
    // Assembly-level program: exercises asm + sim + core without minicc.
    let image = instrep::asm::assemble(
        r#"
        .data
        counter:    .word 0
        .text
        __start:
            li   $t0, 0
            li   $t1, 200
        loop:
            lw   $t2, counter
            addi $t2, $t2, 1
            sw   $t2, counter
            addi $t0, $t0, 1
            blt  $t0, $t1, loop
            lw   $a0, counter
            li   $v0, 0
            syscall
        "#,
    )
    .unwrap();
    let mut m = Machine::new(&image);
    let out = m.run(100_000, |_| {}).unwrap();
    assert_eq!(out, RunOutcome::Exited(200));

    let report = run_report(&image, &AnalysisConfig::default());
    // The loop's lw/addi/sw chain sees a different counter value every
    // iteration, so none of it repeats; only the branch's compare
    // outcome does. The input-AND-output repetition definition separates
    // them (about 1 in 6 instructions here).
    assert!(report.repetition_rate() > 0.1, "rate {}", report.repetition_rate());
    assert!(report.repetition_rate() < 0.4, "rate {}", report.repetition_rate());
}

#[test]
fn skip_and_window_compose() {
    let image = build_with_prelude(PROGRAM);
    let full = run_report(&image, &AnalysisConfig::default());
    let cfg = AnalysisConfig { skip: 5_000, window: 10_000, ..AnalysisConfig::default() };
    let windowed = run_report(&image, &cfg);
    assert_eq!(windowed.dynamic_total, 10_000);
    assert!(windowed.dynamic_total < full.dynamic_total);
    // Steady-state loop: windowed repetition is at least as high as the
    // whole-program rate (no cold start in the window).
    assert!(windowed.repetition_rate() >= full.repetition_rate() - 0.05);
}

#[test]
fn reports_render_for_real_runs() {
    use instrep::core::report;
    let image = build_with_prelude(PROGRAM);
    let r = run_report(&image, &AnalysisConfig::default());
    let named = [("e2e", &r)];
    let blob = [
        report::table1(&named),
        report::figure1(&named),
        report::table2(&named),
        report::figure3(&named),
        report::figure4(&named),
        report::table3(&named),
        report::table4(&named),
        report::tables5_6_7(&named),
        report::table8(&named),
        report::figure5(&named),
        report::table9(&named),
        report::figure6(&named),
        report::table10(&named),
    ]
    .join("\n");
    assert!(blob.contains("e2e"));
    // Table 9 must attribute prologue repetition to our functions.
    assert!(blob.contains("lookup") || blob.contains("mix"), "{blob}");
}

#[test]
fn abi_constants_consistent_across_crates() {
    // The gp window the assembler assumes matches the ABI the simulator
    // initializes.
    let image =
        instrep::asm::assemble(".data\nx: .word 1\n.text\n__start: lw $t0, x\nli $v0,0\nsyscall\n")
            .unwrap();
    let mut m = Machine::new(&image);
    assert_eq!(m.reg(instrep::isa::Reg::GP), abi::GP_INIT);
    assert_eq!(m.reg(instrep::isa::Reg::SP), abi::STACK_TOP);
    m.run(10, |_| {}).unwrap();
}
